"""Tests for the parallel experiment engine."""

import pytest

from repro.api import ExperimentSpec, run_many
from repro.experiments import runner
from repro.experiments.engine import (
    ExperimentEngine,
    configure,
    current_engine,
    reset_default_engine,
)

SCALE = 0.05
GRID = ExperimentSpec.grid(
    ("libquantum", "mcf"), ("amd-phenom-ii",), ("baseline", "swnt"), scales=(SCALE,)
)


def _cycles(results):
    return {spec: stats.cycles for spec, stats in results.items()}


@pytest.fixture(autouse=True)
def _fresh_default_engine():
    reset_default_engine()
    yield
    reset_default_engine()


class TestSerialEngine:
    def test_covers_every_spec(self):
        engine = ExperimentEngine(jobs=1)
        results = engine.run(GRID)
        assert set(results) == set(GRID)
        assert all(stats.cycles > 0 for stats in results.values())

    def test_memo_hits_counted_on_rerun(self):
        engine = ExperimentEngine(jobs=1)
        engine.run(GRID)
        engine.run(GRID)
        assert engine.stats.cells == 2 * len(GRID)
        assert engine.stats.memo_hits >= len(GRID)

    def test_duplicate_specs_deduplicated(self):
        engine = ExperimentEngine(jobs=1)
        spec = GRID[0]
        results = engine.run([spec, spec, spec])
        assert list(results) == [spec]

    def test_run_grid_matches_explicit_specs(self):
        engine = ExperimentEngine(jobs=1)
        a = engine.run_grid(
            ("libquantum",), ("amd-phenom-ii",), ("baseline",), scales=(SCALE,)
        )
        b = engine.run([ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", "ref", SCALE)])
        assert _cycles(a) == _cycles(b)


class TestParallelEngine:
    def test_parallel_identical_to_serial(self):
        serial = ExperimentEngine(jobs=1).run(GRID)
        runner.clear_memo()
        parallel_engine = ExperimentEngine(jobs=2)
        parallel = parallel_engine.run(GRID)
        assert parallel_engine.stats.computed == len(GRID)
        assert _cycles(serial) == _cycles(parallel)
        for spec in GRID:
            assert serial[spec].pc_l1.accesses == parallel[spec].pc_l1.accesses
            assert serial[spec].dram_fills == parallel[spec].dram_fills

    def test_parallel_seeds_shared_memo(self):
        runner.clear_memo()
        results = ExperimentEngine(jobs=2).run(GRID)
        for spec in GRID:
            assert runner.run_spec(spec) is results[spec]

    def test_single_profile_group_stays_in_process(self):
        runner.clear_memo()
        engine = ExperimentEngine(jobs=4)
        specs = [
            ExperimentSpec("libquantum", "amd-phenom-ii", c, "ref", SCALE)
            for c in ("baseline", "hw")
        ]
        results = engine.run(specs)
        assert engine.stats.computed <= 2
        assert set(results) == set(specs)


class TestDiskCache:
    def test_warm_run_computes_nothing(self, tmp_path):
        cold = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        first = cold.run(GRID)
        runner.clear_memo()
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        second = warm.run(GRID)
        assert warm.stats.computed == 0
        assert warm.stats.disk_hits == len(GRID)
        assert _cycles(first) == _cycles(second)

    def test_parallel_workers_persist_results(self, tmp_path):
        runner.clear_memo()
        cold = ExperimentEngine(jobs=2, cache_dir=tmp_path, use_cache=True)
        cold.run(GRID)
        runner.clear_memo()
        warm = ExperimentEngine(jobs=2, cache_dir=tmp_path, use_cache=True)
        warm.run(GRID)
        assert warm.stats.computed == 0

    def test_cache_disabled_never_touches_disk(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=False)
        engine.run(GRID[:1])
        assert engine.cache is None
        assert list(tmp_path.iterdir()) == []


class TestProgressAndSummary:
    def test_progress_callback_sees_every_cell(self):
        seen = []
        engine = ExperimentEngine(
            jobs=1, progress=lambda done, total, spec, source: seen.append(
                (done, total, spec, source)
            )
        )
        engine.run(GRID)
        assert len(seen) == len(GRID)
        assert seen[-1][0] == len(GRID)
        assert {s[3] for s in seen} <= {"memo", "disk", "computed"}

    def test_progress_true_prints_to_stderr(self, capsys):
        engine = ExperimentEngine(jobs=1, progress=True)
        engine.run(GRID[:1])
        err = capsys.readouterr().err
        assert "[engine] 1/1" in err

    def test_summary_mentions_counts(self):
        engine = ExperimentEngine(jobs=1)
        engine.run(GRID)
        text = engine.summary()
        assert f"{len(GRID)} cells" in text
        assert "1 job" in text


class TestDefaultEngine:
    def test_configure_installs_default(self):
        engine = configure(jobs=1)
        assert current_engine() is engine

    def test_current_engine_creates_serial_cacheless(self):
        engine = current_engine()
        assert engine.jobs >= 1
        assert engine.cache is None

    def test_run_many_uses_default(self):
        engine = configure(jobs=1)
        results = run_many(GRID[:1])
        assert engine.stats.cells == 1
        assert set(results) == {GRID[0]}


class TestDriverIntegration:
    def test_fig4_via_engine_matches_legacy_path(self):
        from repro.experiments.fig4_speedup import run_fig4

        engine = ExperimentEngine(jobs=1)
        rows = run_fig4(
            "amd-phenom-ii", benchmarks=("libquantum",), scale=SCALE, engine=engine
        )
        assert engine.stats.cells == 5  # baseline + 4 policies
        spec = ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", "ref", SCALE)
        base = runner.run_spec(spec)
        swnt = runner.run_spec(spec.with_config("swnt"))
        assert rows[0].speedups["swnt"] == pytest.approx(
            base.cycles / swnt.cycles - 1.0
        )

    def test_evaluate_mixes_prewarms_cells(self):
        from repro.experiments.mixes_common import evaluate_mixes
        from repro.workloads.mixes import Mix

        engine = ExperimentEngine(jobs=1)
        mix = Mix(0, ("mcf", "gcc"), ("ref", "ref"))
        outcomes = evaluate_mixes(
            [mix], "amd-phenom-ii", configs=("baseline", "hw"), scale=SCALE,
            engine=engine,
        )
        # 2 members x (baseline, hw); baseline doubles as hw's throttle ref
        assert engine.stats.cells == 4
        assert set(outcomes) == {"baseline", "hw"}
