"""Chaos tests: interrupt real runs mid-flight, resume them, demand
bit-identical results.

The deterministic tier covers KeyboardInterrupt mid-dispatch (the pool is
terminated, partial results are journaled, the truncated batch is
accounted) and SIGTERM graceful drain (the handler requests a drain, the
engine raises :class:`RunInterrupted`, resume picks up exactly the
missing cells).  The ``slow`` tier kills a real ``repro run`` subprocess
with SIGKILL at a randomised point and asserts the resumed run's JSON
output is byte-identical to an uninterrupted baseline — the same
scenario ``tools/chaos_smoke.py`` drives in CI.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import api
from repro.core import serialization
from repro.errors import RunInterrupted
from repro.experiments import runner
from repro.experiments.engine import ExperimentEngine, reset_default_engine
from repro.experiments.journal import RunJournal, replay_journal

SCALE = 0.05
GRID = api.ExperimentSpec.grid(
    ("libquantum", "mcf"), ("amd-phenom-ii",), ("baseline", "swnt"), scales=(SCALE,)
)


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_default_engine()
    runner.clear_memo()
    yield
    reset_default_engine()
    runner.clear_memo()


def _dicts(results):
    return {spec: serialization.stats_to_dict(stats) for spec, stats in results.items()}


def _interrupt_after(n_cells: int, exc=KeyboardInterrupt):
    """A progress callback that raises after ``n_cells`` completions."""

    def _progress(done, total, spec, source):
        if done >= n_cells:
            raise exc

    return _progress


class TestKeyboardInterruptMidDispatch:
    def test_serial_interrupt_journals_partial_batch(self, tmp_path):
        journal = RunJournal.create(run_id="kbd-serial", runs_dir=tmp_path)
        engine = ExperimentEngine(
            jobs=1, journal=journal, progress=_interrupt_after(2)
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(GRID)
        journal.close()
        # The truncated batch is accounted, not lost.
        assert engine.stats.interrupted == 1
        assert engine.stats.cells == 2
        # Everything resolved before the interrupt is journaled.
        replay = replay_journal(journal.path, "kbd-serial")
        assert len(replay.completed) == 2
        assert not replay.finished
        assert len(replay.pending) == len(GRID) - 2

    def test_parallel_interrupt_terminates_pool_and_journals(self, tmp_path):
        journal = RunJournal.create(run_id="kbd-par", runs_dir=tmp_path)
        engine = ExperimentEngine(
            jobs=2, journal=journal, progress=_interrupt_after(1)
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(GRID)
        journal.close()
        assert engine.stats.interrupted == 1
        replay = replay_journal(journal.path, "kbd-par")
        # At least the cell that triggered the interrupt is journaled;
        # the batch as a whole is not.
        assert 1 <= len(replay.completed) < len(GRID)
        assert not replay.finished

    def test_resume_picks_up_exactly_missing_cells(self, tmp_path):
        reference = _dicts(ExperimentEngine(jobs=1).run(GRID))
        runner.clear_memo()

        journal = RunJournal.create(run_id="kbd-resume", runs_dir=tmp_path)
        engine = ExperimentEngine(
            jobs=1, journal=journal, progress=_interrupt_after(2)
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(GRID)
        journal.close()
        done_before = len(replay_journal(journal.path, "kbd-resume").completed)

        # A fresh process would have an empty memo: simulate that.
        runner.clear_memo()
        resumed_engine = ExperimentEngine(jobs=1)
        run_id, results = api.resume_run(
            "kbd-resume", runs_dir=tmp_path, engine=resumed_engine
        )
        assert run_id == "kbd-resume"
        # Exactly the missing cells were recomputed…
        assert resumed_engine.stats.computed == len(GRID) - done_before
        assert resumed_engine.stats.memo_hits == done_before
        # …and the union is bit-identical to an uninterrupted run.
        assert _dicts(results) == reference
        # The resumed journal now replays to a finished run.
        final = replay_journal(journal.path, "kbd-resume")
        assert final.finished
        assert final.pending == []


class TestSigtermGracefulDrain:
    def test_sigterm_raises_resumable_run_interrupted(self, tmp_path):
        journal = RunJournal.create(run_id="term", runs_dir=tmp_path)

        def _send_sigterm(done, total, spec, source):
            if done == 1:
                os.kill(os.getpid(), signal.SIGTERM)

        engine = ExperimentEngine(jobs=1, journal=journal, progress=_send_sigterm)
        with pytest.raises(RunInterrupted) as excinfo:
            engine.run(GRID)
        journal.close()
        exc = excinfo.value
        assert exc.run_id == "term"
        assert 0 < exc.done < len(GRID)
        assert exc.total == len(GRID)
        assert "--resume term" in str(exc)
        assert engine.stats.interrupted == 1

        runner.clear_memo()
        run_id, results = api.resume_run(
            "term", runs_dir=tmp_path, engine=ExperimentEngine(jobs=1)
        )
        assert set(results) == set(GRID)

    def test_handlers_restored_after_run(self, tmp_path):
        previous_int = signal.getsignal(signal.SIGINT)
        previous_term = signal.getsignal(signal.SIGTERM)
        journal = RunJournal.create(run_id="restore", runs_dir=tmp_path)
        engine = ExperimentEngine(jobs=1, journal=journal)
        engine.run(GRID[:1])
        journal.close()
        assert signal.getsignal(signal.SIGINT) is previous_int
        assert signal.getsignal(signal.SIGTERM) is previous_term

    def test_unjournaled_run_installs_no_handlers(self):
        previous_int = signal.getsignal(signal.SIGINT)
        engine = ExperimentEngine(jobs=1)
        engine.run(GRID[:1])
        assert signal.getsignal(signal.SIGINT) is previous_int


class TestResumeEdgeCases:
    def test_resume_of_finished_run_recomputes_nothing(self, tmp_path):
        _, results = api.run_journaled(
            GRID, run_id="done", runs_dir=tmp_path, engine=ExperimentEngine(jobs=1)
        )
        runner.clear_memo()
        engine = ExperimentEngine(jobs=1)
        _, resumed = api.resume_run("done", runs_dir=tmp_path, engine=engine)
        assert engine.stats.computed == 0
        assert _dicts(resumed) == _dicts(results)

    def test_resume_after_torn_tail(self, tmp_path):
        journal = RunJournal.create(run_id="torn", runs_dir=tmp_path)
        engine = ExperimentEngine(
            jobs=1, journal=journal, progress=_interrupt_after(3)
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run(GRID)
        journal.close()
        # Tear the final record, as a SIGKILL mid-append would.
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-4])

        runner.clear_memo()
        reference = _dicts(ExperimentEngine(jobs=1).run(GRID))
        runner.clear_memo()
        _, results = api.resume_run(
            "torn", runs_dir=tmp_path, engine=ExperimentEngine(jobs=1)
        )
        assert _dicts(results) == reference

    def test_run_journaled_writes_run_end(self, tmp_path):
        run_id, _ = api.run_journaled(
            GRID[:2], runs_dir=tmp_path, engine=ExperimentEngine(jobs=1)
        )
        replay = replay_journal(tmp_path / run_id / "journal.jsonl", run_id)
        assert replay.finished
        assert replay.dispatched >= 1


@pytest.mark.slow
class TestSubprocessSigkill:
    """The full chaos scenario: SIGKILL a real run, resume, demand
    byte-identical JSON output (no graceful anything — the journal's
    fsync'd prefix is all the resume has)."""

    def test_sigkill_resume_bit_identity(self, tmp_path):
        env = dict(
            os.environ,
            PYTHONPATH="src",
            REPRO_CACHE_DIR=str(tmp_path / "cache"),
            REPRO_RUNS_DIR=str(tmp_path / "runs"),
        )
        base_cmd = [
            sys.executable, "-m", "repro.cli", "run",
            "--workloads", "libquantum,mcf",
            "--configs", "baseline,swnt",
            "--scale", str(SCALE),
            "--jobs", "1",
            "--no-cache",
        ]
        baseline_out = tmp_path / "baseline.json"
        subprocess.run(
            [*base_cmd, "--run-id", "base", "--json-out", str(baseline_out)],
            env=env, check=True, capture_output=True, timeout=120,
        )

        victim = subprocess.Popen(
            [*base_cmd, "--run-id", "victim"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        journal_path = tmp_path / "runs" / "victim" / "journal.jsonl"
        deadline = time.time() + 60
        # Kill once the run is demonstrably mid-flight (journal exists).
        while time.time() < deadline and not journal_path.exists():
            time.sleep(0.02)
        time.sleep(0.3)
        victim.kill()
        victim.wait(timeout=30)

        resumed_out = tmp_path / "resumed.json"
        proc = subprocess.run(
            [*base_cmd, "--resume", "victim", "--json-out", str(resumed_out)],
            env=env, capture_output=True, timeout=120, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        baseline = json.loads(baseline_out.read_text())
        resumed = json.loads(resumed_out.read_text())
        assert resumed["results"] == baseline["results"]
