"""The test suite itself must be deterministic (see tools/).

Runs the same lint CI runs: no unseeded RNG construction anywhere in
``tests/``.  A violation here means a test can fail unreproducibly.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from check_test_determinism import find_violations  # noqa: E402


def test_tests_directory_is_deterministic():
    violations = find_violations([ROOT / "tests"])
    assert not violations, "\n".join(str(v) for v in violations)


def test_lint_catches_unseeded_rng(tmp_path):
    # the forbidden constructions are assembled by concatenation so this
    # file does not itself trip the lint it is testing
    bad = tmp_path / "test_bad.py"
    bad.write_text(
        "import numpy as np\n"
        "import random\n"
        "r = np.random.default_rng(" + ")\n"
        "s = random.Random(" + ")\n"
        "np.random." + "seed(1)\n"
        "x = random." + "random()\n"
    )
    rules = {v.rule for v in find_violations([bad])}
    assert rules == {
        "unseeded-default_rng",
        "unseeded-Random",
        "global-np-seed",
        "module-level-random",
    }


def test_lint_ignores_seeded_and_comments(tmp_path):
    good = tmp_path / "test_good.py"
    good.write_text(
        "import numpy as np\n"
        "import random\n"
        "r = np.random.default_rng(7)\n"
        "s = random.Random(3)\n"
        "# np.random.seed(1) in a comment is fine\n"
        "g = rng.random()\n"
    )
    assert find_violations([good]) == []
