"""Tests for the hardware prefetcher models."""

import pytest

from repro.hwpref import (
    AdjacentLinePrefetcher,
    NullPrefetcher,
    PCStridePrefetcher,
    PrefetchTuning,
    StreamerPrefetcher,
    amd_hw_prefetcher,
    intel_hw_prefetcher,
)


def feed_stream(pf, pc=0, start_line=0, n=10, stride_bytes=64, l1_hit=False):
    """Drive a prefetcher with a constant-stride access stream."""
    all_requests = []
    for i in range(n):
        addr = start_line * 64 + i * stride_bytes
        reqs = pf.observe(pc, addr, addr // 64, l1_hit)
        all_requests.extend(r.line for r in reqs)
    return all_requests


class TestNull:
    def test_never_fires(self):
        pf = NullPrefetcher()
        assert feed_stream(pf, n=50) == []


class TestPCStride:
    def test_trains_and_runs_ahead(self):
        pf = PCStridePrefetcher(train_threshold=2)
        lines = feed_stream(pf, n=12, stride_bytes=64)
        assert lines  # fired after training
        assert all(line > 0 for line in lines)

    def test_requires_consistent_stride(self):
        pf = PCStridePrefetcher(train_threshold=2)
        addrs = [0, 64, 4096, 128, 9000, 64 * 7]
        fired = []
        for a in addrs:
            fired += pf.observe(0, a, a // 64, False)
        assert fired == []

    def test_tracks_pcs_independently(self):
        pf = PCStridePrefetcher(train_threshold=2)
        for i in range(8):
            pf.observe(0, i * 64, i, False)
            pf.observe(1, 1 << 20, (1 << 20) // 64, False)
        # pc0 trained; pc1 stationary (stride 0) never fires
        assert pf.observe(0, 8 * 64, 8, False)
        assert not pf.observe(1, 1 << 20, (1 << 20) // 64, False)

    def test_sub_line_strides_predict_next_lines(self):
        pf = PCStridePrefetcher(train_threshold=2)
        lines = feed_stream(pf, n=20, stride_bytes=16)
        assert lines
        # predictions advance one line at a time for small strides
        assert max(lines) < 64

    def test_negative_stride_direction(self):
        pf = PCStridePrefetcher(train_threshold=2)
        fired = []
        for i in range(10):
            a = (1 << 20) - i * 128
            fired += [r.line for r in pf.observe(0, a, a // 64, False)]
        assert fired and all(line < (1 << 20) // 64 for line in fired)

    def test_confidence_ramps_distance(self):
        pf = PCStridePrefetcher(train_threshold=2, distance_lines=2, max_ramp=4)
        early = None
        for i in range(30):
            a = i * 64
            reqs = pf.observe(0, a, i, False)
            if reqs and early is None:
                early = reqs[0].line - i
            late = reqs[0].line - i if reqs else None
        assert early is not None and late is not None
        assert late > early

    def test_table_eviction(self):
        pf = PCStridePrefetcher(table_size=4)
        for pc in range(10):
            pf.observe(pc, 0, 0, False)
        assert len(pf._table) <= 4

    def test_reset(self):
        pf = PCStridePrefetcher(train_threshold=2)
        feed_stream(pf, n=10)
        pf.reset()
        assert feed_stream(pf, n=2) == []

    def test_bad_params(self):
        with pytest.raises(ValueError):
            PCStridePrefetcher(degree=0)
        with pytest.raises(ValueError):
            PCStridePrefetcher(max_ramp=0)


class TestStreamer:
    def test_detects_ascending_stream(self):
        pf = StreamerPrefetcher()
        lines = feed_stream(pf, n=10)
        assert lines
        assert min(lines) > 0

    def test_detects_descending_stream(self):
        pf = StreamerPrefetcher()
        fired = []
        base = 1 << 14
        for i in range(10):
            line = base - i
            fired += [r.line for r in pf.observe(0, line * 64, line, False)]
        assert fired and all(line < base for line in fired)

    def test_streams_are_page_local(self):
        pf = StreamerPrefetcher(cross_page=False)
        # accesses near a page end: prefetches never cross the boundary
        lines_per_page = 4096 // 64
        fired = []
        for i in range(10):
            line = lines_per_page - 10 + i
            fired += [r.line for r in pf.observe(0, line * 64, line, False)]
        assert all(line < lines_per_page for line in fired)

    def test_direction_flip_resets(self):
        pf = StreamerPrefetcher()
        feed_stream(pf, n=6)
        # reverse direction: first observation must not fire
        assert pf.observe(0, 0, 0, False) == []

    def test_stream_table_bounded(self):
        pf = StreamerPrefetcher(max_streams=8)
        for page in range(32):
            line = page * 64
            pf.observe(0, line * 64, line, False)
        assert len(pf._streams) <= 8


class TestAdjacentLine:
    def test_buddy_line(self):
        pf = AdjacentLinePrefetcher()
        assert [r.line for r in pf.observe(0, 0, 10, False)] == [11]
        assert [r.line for r in pf.observe(0, 0, 11, False)] == [10]

    def test_miss_only_by_default(self):
        pf = AdjacentLinePrefetcher()
        assert pf.observe(0, 0, 10, True) == []


class TestThrottling:
    def test_backs_off_under_contention(self):
        rho = {"value": 0.0}
        pf = StreamerPrefetcher(utilisation=lambda: rho["value"])
        calm = len(feed_stream(pf, n=20))
        pf.reset()
        rho["value"] = 1.0
        stressed = len(feed_stream(pf, n=20))
        assert stressed < calm

    def test_disabled_tuning_silences_confident_stream(self):
        # factor == 0 must gate issue even after confidence is built up.
        pf = StreamerPrefetcher()
        assert feed_stream(pf, n=10)
        pf.apply_tuning(PrefetchTuning(enabled=False))
        assert feed_stream(pf, start_line=1 << 14, n=10) == []

    def test_degree_scale_narrows_window(self):
        full = StreamerPrefetcher(max_degree=8)
        scaled = StreamerPrefetcher(max_degree=8)
        scaled.apply_tuning(PrefetchTuning(degree_scale=0.25))
        n_full = len(feed_stream(full, n=20))
        n_scaled = len(feed_stream(scaled, n=20))
        assert 0 < n_scaled < n_full

    def test_low_utilisation_untouched(self):
        # rho below the 0.70 knee must not throttle at all.
        calm = StreamerPrefetcher(utilisation=lambda: 0.5)
        plain = StreamerPrefetcher()
        assert feed_stream(calm, n=20) == feed_stream(plain, n=20)

    def test_descending_stream_stops_at_line_zero(self):
        # the negative-target break: a downward stream near address 0
        # never requests a negative line.
        pf = StreamerPrefetcher()
        fired = []
        for line in (8, 7, 6, 5, 4, 3, 2, 1, 0):
            fired += [r.line for r in pf.observe(0, line * 64, line, False)]
        assert fired and all(line >= 0 for line in fired)


class TestFactories:
    def test_amd_is_stride_only(self):
        pf = amd_hw_prefetcher()
        # a single isolated miss never triggers AMD's prefetcher
        assert pf.observe(0, 4096, 64, False) == []

    def test_intel_fires_adjacent_on_any_miss(self):
        pf = intel_hw_prefetcher()
        reqs = pf.observe(0, 4096, 64, False)
        assert 65 in [r.line for r in reqs]

    def test_intel_deduplicates(self):
        pf = intel_hw_prefetcher()
        for i in range(8):
            reqs = pf.observe(0, i * 64, i, False)
            lines = [r.line for r in reqs]
            assert len(lines) == len(set(lines))


class TestAdjacentLineDutyCycle:
    """The throttle back-off is duty-cycled, not a hard cliff at 0.5."""

    @staticmethod
    def _issues(factor, n=100):
        from repro.hwpref.base import PrefetchTuning

        pf = AdjacentLinePrefetcher()
        pf.apply_tuning(PrefetchTuning(degree_scale=factor))
        issued = 0
        for i in range(n):
            issued += len(pf.observe(0, i * 128, i * 2, False))
        return issued

    def test_full_factor_always_fires(self):
        assert self._issues(1.0) == 100

    def test_band_is_proportional_not_cliff(self):
        # Pre-fix the prefetcher issued nothing below 0.5 and
        # everything at/above it; duty-cycling tracks the factor.
        for factor in (0.4, 0.45, 0.5, 0.55, 0.6):
            issued = self._issues(factor)
            assert abs(issued - 100 * factor) <= 1, (factor, issued)

    def test_documented_floor_still_issues(self):
        assert self._issues(0.25) == 25

    def test_zero_factor_disables(self):
        from repro.hwpref.base import PrefetchTuning

        pf = AdjacentLinePrefetcher()
        pf.apply_tuning(PrefetchTuning(enabled=False))
        assert pf.observe(0, 0, 10, False) == []

    def test_reset_clears_duty_accumulator(self):
        from repro.hwpref.base import PrefetchTuning

        pf = AdjacentLinePrefetcher()
        pf.apply_tuning(PrefetchTuning(degree_scale=0.6))
        first = [len(pf.observe(0, i * 128, i * 2, False)) for i in range(5)]
        pf.reset()
        second = [len(pf.observe(0, i * 128, i * 2, False)) for i in range(5)]
        assert first == second
