"""Tests for the analysis passes: MDDLI, stride, distance, bypass."""

import numpy as np
import pytest

from repro.config import amd_phenom_ii
from repro.core.bypass import data_reusing_loads, should_bypass
from repro.core.distance import compute_prefetch_distance
from repro.core.mddli import (
    cost_benefit_threshold,
    estimate_miss_latency,
    identify_delinquent_loads,
)
from repro.core.report import StrideInfo
from repro.core.strideanalysis import analyze_all_strides, analyze_stride
from repro.errors import AnalysisError
from repro.sampling import RuntimeSampler, StrideSampleSet, collect_reuse_samples
from repro.statstack import PerPCMissRatios, StatStackModel
from repro.trace import MemoryTrace
from repro.trace.synthesis import strided_pattern


def make_ratios(trace, machine, rate=5e-3, seed=0):
    sampling = RuntimeSampler(rate=rate, seed=seed).sample(trace)
    model = StatStackModel(sampling.reuse, machine.line_bytes)
    return sampling, PerPCMissRatios(model, machine)


class TestCostBenefit:
    def test_threshold_formula(self, amd):
        # MR > alpha / latency (paper §V)
        assert cost_benefit_threshold(amd, latency=100.0) == pytest.approx(
            amd.prefetch_cost / 100.0
        )

    def test_bad_latency(self, amd):
        with pytest.raises(AnalysisError):
            cost_benefit_threshold(amd, latency=0.0)

    def test_missing_load_selected_hitting_load_rejected(self, amd):
        n = 60_000
        pc = np.tile([0, 1], n // 2)
        addr = np.empty(n, np.int64)
        addr[0::2] = strided_pattern(0, n // 2, 64)  # always misses
        addr[1::2] = 1 << 30  # always hits
        sampling, ratios = make_ratios(MemoryTrace.loads(pc, addr), amd)
        selected, skipped = identify_delinquent_loads(ratios)
        assert [d.pc for d in selected] == [0]
        assert skipped.get(1) == "cost-benefit"

    def test_min_samples_guard(self, amd):
        n = 40_000
        # pc 1 executes twice only
        pc = np.zeros(n, np.int64)
        pc[100] = 1
        pc[200] = 1
        addr = strided_pattern(0, n, 64)
        sampling, ratios = make_ratios(MemoryTrace.loads(pc, addr), amd)
        selected, skipped = identify_delinquent_loads(ratios, min_samples=8)
        assert all(d.pc != 1 for d in selected)

    def test_ranked_by_impact(self, amd):
        n = 90_000
        # pc 0: hot streaming (2/3 of refs); pc 1: rarer streaming
        pc = np.tile([0, 0, 1], n // 3)
        addr = np.empty(n, np.int64)
        addr[pc == 0] = strided_pattern(0, (2 * n) // 3, 64)
        addr[pc == 1] = strided_pattern(1 << 31, n // 3, 64)
        sampling, ratios = make_ratios(MemoryTrace.loads(pc, addr), amd)
        selected, _ = identify_delinquent_loads(ratios)
        assert selected[0].pc == 0


class TestEstimateLatency:
    def test_dram_bound_app(self, amd):
        # cold stream: everything misses to DRAM
        t = MemoryTrace.loads(np.zeros(50_000, np.int64), strided_pattern(0, 50_000, 64))
        sampling = RuntimeSampler(rate=5e-3, seed=1).sample(t)
        model = StatStackModel(sampling.reuse, amd.line_bytes)
        lat = estimate_miss_latency(model, amd)
        assert lat > amd.dram_latency  # includes transfer time

    def test_l2_bound_app(self, amd):
        # working set between L1 and L2: misses served by L2
        t = MemoryTrace.loads(
            np.zeros(80_000, np.int64),
            strided_pattern(0, 80_000, 64, wrap_bytes=256 * 1024),
        )
        sampling = RuntimeSampler(rate=5e-3, seed=1).sample(t)
        model = StatStackModel(sampling.reuse, amd.line_bytes)
        lat = estimate_miss_latency(model, amd)
        assert lat < amd.llc.hit_latency * 1.5


class TestStrideAnalysis:
    def _samples(self, strides, recurrences=None, pc=0):
        n = len(strides)
        rec = recurrences if recurrences is not None else [3] * n
        return StrideSampleSet(
            np.full(n, pc, np.int64),
            np.asarray(strides, np.int64),
            np.asarray(rec, np.int64),
        )

    def test_pure_stride(self):
        info = analyze_stride(self._samples([16] * 20), 0)
        assert info is not None
        assert info.dominant_stride == 16
        assert info.dominance == 1.0
        assert info.estimated_run_length == float("inf")

    def test_dominance_70_percent_rule(self):
        # 65% in one group: below the paper's threshold
        strides = [16] * 13 + [4096, -4096, 8192, 12288, -8192, 20480, 17000]
        assert analyze_stride(self._samples(strides), 0) is None
        # 75%: above
        strides = [16] * 15 + [4096, 8192, -4096, 12288, 20480]
        info = analyze_stride(self._samples(strides), 0)
        assert info is not None and info.dominant_stride == 16

    def test_zero_stride_not_candidate(self):
        assert analyze_stride(self._samples([0] * 20), 0) is None

    def test_grouping_by_cache_line(self):
        # 8 and 56 fall in the same line-sized group
        strides = [8, 56, 8, 56, 8, 56, 8, 8]
        info = analyze_stride(self._samples(strides), 0)
        assert info is not None
        assert info.dominant_stride == 8  # most frequent in group

    def test_negative_strides(self):
        info = analyze_stride(self._samples([-16] * 10), 0)
        assert info is not None and info.dominant_stride == -16

    def test_run_length_estimate(self):
        # 5 regular : 1 jump -> runs of ~5
        strides = ([32] * 5 + [99999]) * 10
        info = analyze_stride(self._samples(strides), 0)
        assert info is not None
        assert info.estimated_run_length == pytest.approx(5.0, rel=0.3)

    def test_min_samples(self):
        assert analyze_stride(self._samples([16] * 3), 0, min_samples=4) is None

    def test_analyze_all(self):
        s1 = self._samples([16] * 10, pc=0)
        s2 = self._samples([1, 999, -55, 7000, 13, 900, -3, 62000, 17, 40000], pc=1)
        merged = s1.merged_with(s2)
        out = analyze_all_strides(merged)
        assert 0 in out and 1 not in out

    def test_bad_threshold(self):
        with pytest.raises(AnalysisError):
            analyze_stride(self._samples([16] * 10), 0, dominance_threshold=0.0)


class TestPrefetchDistance:
    def _info(self, stride, recurrence=3, dominance=1.0):
        return StrideInfo(
            pc=0,
            dominant_stride=stride,
            dominance=dominance,
            median_recurrence=recurrence,
            n_samples=50,
        )

    def test_large_stride_formula(self, amd):
        # P = ceil(l/d) * stride (paper §VI-A)
        info = self._info(stride=128, recurrence=4)
        d = (4 + 1) * amd.cycles_per_memop
        import math

        expected = math.ceil(200.0 / d) * 128
        assert compute_prefetch_distance(info, amd, latency=200.0) == expected

    def test_short_stride_line_granularity(self, amd):
        # stride < C: P = ceil(l/(d*i)) * C -> multiple of the line size
        info = self._info(stride=16, recurrence=4)
        p = compute_prefetch_distance(info, amd, latency=200.0)
        assert p % amd.line_bytes == 0
        assert p > 0

    def test_negative_stride_gives_negative_distance(self, amd):
        info = self._info(stride=-64, recurrence=4)
        assert compute_prefetch_distance(info, amd, latency=200.0) < 0

    def test_r_over_2_clamp_via_refs(self, amd):
        info = self._info(stride=64, recurrence=0)
        unclamped = compute_prefetch_distance(info, amd, latency=10_000.0)
        clamped = compute_prefetch_distance(
            info, amd, latency=10_000.0, refs_in_loop=10
        )
        assert clamped <= unclamped
        assert clamped <= max(amd.line_bytes, 5 * 64)

    def test_run_length_clamp(self, amd):
        # bursty load: dominance 0.857 -> runs of ~6 -> P <= 3 strides
        info = self._info(stride=64, recurrence=0, dominance=6 / 7)
        p = compute_prefetch_distance(info, amd, latency=10_000.0)
        assert p <= max(amd.line_bytes, 3 * 64)

    def test_longer_latency_longer_distance(self, amd):
        info = self._info(stride=64, recurrence=2)
        p1 = compute_prefetch_distance(info, amd, latency=50.0)
        p2 = compute_prefetch_distance(info, amd, latency=400.0)
        assert p2 > p1

    def test_zero_stride_rejected(self, amd):
        with pytest.raises(AnalysisError):
            compute_prefetch_distance(self._info(stride=0), amd)


class TestBypass:
    def _trace_stream_and_reuser(self, reuse_region):
        """pc0 streams; pc1 re-reads pc0's lines at a given distance."""
        n = 140_000
        pc = np.tile([0, 1], n // 2)
        addr = np.empty(n, np.int64)
        stream = strided_pattern(0, n // 2, 64)
        addr[0::2] = stream
        # pc1 touches the line pc0 touched `reuse_region` lines ago
        lag = reuse_region
        reuse = np.roll(stream, lag)
        reuse[:lag] = stream[:lag]
        addr[1::2] = reuse
        return MemoryTrace.loads(pc, addr)

    def test_data_reusing_loads_found(self, amd):
        t = self._trace_stream_and_reuser(1)
        sampling, ratios = make_ratios(t, amd)
        reusers = data_reusing_loads(sampling.reuse, 0)
        assert 1 in reusers

    def test_no_reuse_is_bypassable(self, amd):
        # cold stream, nothing re-touches the lines
        t = MemoryTrace.loads(
            np.zeros(50_000, np.int64), strided_pattern(0, 50_000, 64)
        )
        sampling, ratios = make_ratios(t, amd)
        assert should_bypass(0, sampling.reuse, ratios)

    def test_immediate_reuse_is_bypassable(self, amd):
        # reuser hits in L1 (lag 1 line): flat curve between L1 and LLC
        t = self._trace_stream_and_reuser(1)
        sampling, ratios = make_ratios(t, amd)
        assert should_bypass(0, sampling.reuse, ratios)

    def test_llc_distance_reuse_blocks_bypass(self, amd):
        # reuser touches lines 16k lines later (stack distance ~2 MB):
        # served by the LLC, so the reuser's curve drops between L1 and
        # LLC -> no bypass
        t = self._trace_stream_and_reuser(16 * 1024)
        sampling, ratios = make_ratios(t, amd)
        assert not should_bypass(0, sampling.reuse, ratios)
