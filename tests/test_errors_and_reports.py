"""Tests for the exception hierarchy and the report dataclasses."""

import pytest

import repro
from repro.core.report import (
    DelinquentLoad,
    OptimizationReport,
    PrefetchDecision,
    StrideInfo,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    ModelError,
    ProgramError,
    ReproError,
    SamplingError,
    SimulationError,
    TraceError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            TraceError,
            ProgramError,
            SimulationError,
            ModelError,
            SamplingError,
            AnalysisError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_catchable_generically(self):
        # callers using ValueError for config mistakes still work
        assert issubclass(ConfigError, ValueError)
        assert issubclass(TraceError, ValueError)

    def test_package_exports(self):
        assert repro.ReproError is ReproError
        assert repro.__version__


class TestPrefetchDecision:
    def test_kind_labels(self):
        assert PrefetchDecision(0, 8, 64, nta=False).kind == "prefetch"
        assert PrefetchDecision(0, 8, 64, nta=True).kind == "prefetchnta"

    def test_zero_distance_rejected(self):
        with pytest.raises(ValueError):
            PrefetchDecision(0, 8, 0, nta=False)


class TestStrideInfo:
    def test_run_length_infinite_for_pure_stride(self):
        info = StrideInfo(0, 16, 1.0, 3.0, 10)
        assert info.estimated_run_length == float("inf")
        assert info.is_regular

    def test_run_length_from_dominance(self):
        info = StrideInfo(0, 16, 0.8, 3.0, 10)
        assert info.estimated_run_length == pytest.approx(4.0)


class TestOptimizationReport:
    def _report(self):
        r = OptimizationReport(machine_name="m")
        r.delinquent = [DelinquentLoad(0, 0.5, 0.4, 0.3, 0.2, 10.0)]
        r.decisions = [
            PrefetchDecision(0, 16, 128, nta=True),
            PrefetchDecision(1, 8, 64, nta=False),
        ]
        r.skipped = {2: "irregular-stride"}
        return r

    def test_decision_lookup(self):
        r = self._report()
        assert r.decision_for(0).nta
        assert r.decision_for(9) is None

    def test_prefetched_pcs(self):
        assert self._report().prefetched_pcs == {0, 1}

    def test_nta_fraction(self):
        assert self._report().nta_fraction == pytest.approx(0.5)
        assert OptimizationReport(machine_name="m").nta_fraction == 0.0

    def test_summary_mentions_everything(self):
        text = self._report().summary()
        assert "prefetchnta" in text
        assert "irregular-stride" in text
        assert "machine: m" in text
