"""Edge-case tests for the interpreter, hierarchy chunking, and model internals."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy
from repro.cachesim.stats import RunStats
from repro.errors import ProgramError
from repro.isa import (
    FixedAccess,
    Kernel,
    Load,
    Prefetch,
    Program,
    StreamAccess,
    execute_kernel,
    execute_program,
)
from repro.isa.instructions import AccessPattern
from repro.sampling import collect_reuse_samples
from repro.statstack.model import StatStackModel
from repro.trace import MemoryTrace
from repro.trace.synthesis import strided_pattern


class _BrokenPattern(AccessPattern):
    """Yields the wrong number of addresses (contract violation)."""

    def generate(self, rng, n):
        return np.zeros(max(0, n - 1), dtype=np.int64)

    def describe(self):
        return "broken()"


class TestInterpreterEdges:
    def test_zero_trip_kernel(self):
        k = Kernel("k", (Load("a", FixedAccess(0)),), trips=0)
        trace = execute_kernel(k, {("k", "a"): 0}, seed=0)
        assert len(trace) == 0

    def test_broken_pattern_detected(self):
        k = Kernel("k", (Load("a", _BrokenPattern()),), trips=4)
        with pytest.raises(ProgramError, match="yielded"):
            execute_kernel(k, {("k", "a"): 0}, seed=0)

    def test_prefetch_address_clamped_at_zero(self):
        p = Program(
            "neg",
            (
                Kernel(
                    "k",
                    (Load("a", StreamAccess(0, 8)), Prefetch("a", -4096)),
                    trips=4,
                ),
            ),
        )
        res = execute_program(p, seed=0)
        assert res.trace.addr.min() >= 0

    def test_rewriting_insensitive_to_prefetch_count(self):
        """Random patterns must not shift when more prefetches are added."""
        base_body = (
            Load("a", StreamAccess(0, 8)),
            Load("g", __import__("repro.isa", fromlist=["GatherAccess"]).GatherAccess(1 << 20, 65536, 0.5)),
        )
        p1 = Program("p", (Kernel("k", base_body, trips=200),))
        p2 = Program(
            "p",
            (
                Kernel(
                    "k",
                    (base_body[0], Prefetch("a", 64), base_body[1], Prefetch("g", 128)),
                    trips=200,
                ),
            ),
        )
        d1 = execute_program(p1, seed=5).trace.demand_only()
        d2 = execute_program(p2, seed=5).trace.demand_only()
        assert d1 == d2


class TestHierarchyChunking:
    def test_chunked_run_equals_single_run(self, tiny_machine):
        trace = MemoryTrace.loads(
            np.zeros(3000, np.int64),
            strided_pattern(0, 3000, 64, wrap_bytes=4096),
        )
        whole = CacheHierarchy(tiny_machine).run(trace, 2.0, 2.0)

        h = CacheHierarchy(tiny_machine)
        stats = RunStats(line_bytes=tiny_machine.line_bytes)
        for chunk in trace.iter_chunks(700):
            h.run(chunk, 2.0, 2.0, stats=stats)
        assert stats.cycles == pytest.approx(whole.cycles)
        assert stats.l1.misses == whole.l1.misses
        assert stats.dram_fills == whole.dram_fills
        assert stats.instructions == whole.instructions


class TestTailIntegralInternals:
    def _model(self, wrap_lines):
        n = 4000
        t = MemoryTrace.loads(
            np.zeros(n, np.int64),
            strided_pattern(0, n, 64, wrap_bytes=wrap_lines * 64),
        )
        samples = collect_reuse_samples(t, np.arange(n), 64)
        return StatStackModel(samples)

    def test_inverse_consistency(self):
        model = self._model(128)
        tail = model._tail
        for target in (1.0, 10.0, 64.0, 127.0):
            d = tail.inverse(target)
            if np.isfinite(d):
                sd = tail.stack_distance(np.array([d]))[0]
                assert sd == pytest.approx(target, abs=1.0)

    def test_inverse_beyond_tail_is_inf_without_dangling(self):
        # a tight loop has zero dangling mass beyond the loop size...
        model = self._model(16)
        # cannot ever accumulate more unique lines than exist + dangling slope
        d = model._tail.inverse(1e9)
        assert d == np.inf or d > 1e6

    def test_dangling_only_model(self):
        # cold stream: all samples dangle, every access misses anywhere
        n = 1000
        t = MemoryTrace.loads(np.zeros(n, np.int64), strided_pattern(0, n, 64))
        samples = collect_reuse_samples(t, np.arange(n), 64)
        model = StatStackModel(samples)
        assert model.miss_ratio(1 << 30) == pytest.approx(1.0)
