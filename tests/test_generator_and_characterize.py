"""Tests for the workload generator and trace characterisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import amd_phenom_ii
from repro.core import PrefetchOptimizer
from repro.errors import WorkloadError
from repro.isa import execute_program
from repro.sampling import RuntimeSampler
from repro.trace import MemOp, MemoryTrace, characterize_trace
from repro.trace.synthesis import chase_pattern, strided_pattern
from repro.workloads import WorkloadRecipe, generate_workload


class TestGenerator:
    def test_deterministic(self):
        recipe = WorkloadRecipe(stream_weight=1, chase_weight=1, trips=500)
        a = execute_program(generate_workload(recipe, seed=3), seed=3).trace
        b = execute_program(generate_workload(recipe, seed=3), seed=3).trace
        assert a == b

    def test_component_counts(self):
        recipe = WorkloadRecipe(
            stream_weight=2,
            chase_weight=1,
            store_weight=1,
            n_instructions=8,
            trips=100,
        )
        program = generate_workload(recipe, seed=0)
        labels = [i.label for k in program.kernels for i in k.mem_instructions]
        assert len(labels) == 8
        assert sum(l.startswith("stream") for l in labels) >= 2
        assert sum(l.startswith("chase") for l in labels) >= 1
        assert sum(l.startswith("store") for l in labels) >= 1

    def test_every_positive_weight_represented(self):
        recipe = WorkloadRecipe(
            stream_weight=10,
            chase_weight=0.01,
            gather_weight=0.01,
            burst_weight=0.01,
            store_weight=0.01,
            n_instructions=6,
            trips=50,
        )
        program = generate_workload(recipe, seed=1)
        labels = {i.label[:5] for k in program.kernels for i in k.mem_instructions}
        assert {"strea", "chase", "gathe", "burst", "store"} <= labels

    def test_footprint_scales(self):
        small = WorkloadRecipe(
            stream_weight=1, footprint_bytes=1 << 20, trips=40_000, stride_bytes=64
        )
        large = WorkloadRecipe(
            stream_weight=1, footprint_bytes=8 << 20, trips=40_000, stride_bytes=64
        )
        t_small = execute_program(generate_workload(small, 0), 0).trace
        t_large = execute_program(generate_workload(large, 0), 0).trace
        assert t_large.footprint_lines(64) > t_small.footprint_lines(64)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            WorkloadRecipe(stream_weight=0, chase_weight=0)
        with pytest.raises(WorkloadError):
            WorkloadRecipe(n_instructions=0)
        with pytest.raises(WorkloadError):
            WorkloadRecipe(footprint_bytes=1024)

    @given(
        st.floats(min_value=0, max_value=5),
        st.floats(min_value=0, max_value=5),
        st.floats(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_pipeline_never_crashes_on_generated_workloads(
        self, w_stream, w_chase, w_gather, n_instr, seed
    ):
        """Fuzz: any generated workload flows through the whole pipeline."""
        if w_stream + w_chase + w_gather <= 0:
            w_stream = 1.0
        recipe = WorkloadRecipe(
            stream_weight=w_stream,
            chase_weight=w_chase,
            gather_weight=w_gather,
            n_instructions=n_instr,
            trips=4000,
            footprint_bytes=2 << 20,
        )
        program = generate_workload(recipe, seed=seed)
        execution = execute_program(program, seed=seed)
        sampling = RuntimeSampler(rate=5e-3, seed=seed, min_samples=32).sample(
            execution.trace
        )
        plan = PrefetchOptimizer(amd_phenom_ii()).analyze(
            sampling, refs_per_pc=program.refs_per_pc()
        )
        # plans only reference real instructions with sane distances
        pcs = set(program.refs_per_pc())
        for d in plan.decisions:
            assert d.pc in pcs
            assert d.distance_bytes != 0


class TestCharacterize:
    def test_stream_character(self):
        t = MemoryTrace.loads(np.zeros(5000, np.int64), strided_pattern(0, 5000, 16))
        c = characterize_trace(t)
        assert c.n_refs == 5000
        assert c.store_fraction == 0.0
        assert c.per_pc[0].dominant_stride == 16
        assert c.per_pc[0].is_regular
        assert c.regular_fraction() == 1.0

    def test_chase_is_irregular(self, rng):
        t = MemoryTrace.loads(
            np.zeros(5000, np.int64), chase_pattern(rng, 0, 4096, 5000)
        )
        c = characterize_trace(t)
        assert not c.per_pc[0].is_regular
        assert c.regular_fraction() == 0.0

    def test_footprint(self):
        t = MemoryTrace.loads(np.zeros(100, np.int64), strided_pattern(0, 100, 64))
        c = characterize_trace(t)
        assert c.footprint_bytes == 100 * 64

    def test_store_fraction_counts_nt(self):
        ops = [MemOp.LOAD, MemOp.STORE, MemOp.STORE_NT, MemOp.PREFETCH]
        t = MemoryTrace([0, 1, 2, 0], [0, 64, 128, 192], ops)
        c = characterize_trace(t)
        assert c.n_refs == 3
        assert c.store_fraction == pytest.approx(2 / 3)
        assert c.n_prefetches == 1

    def test_reuse_percentiles(self):
        # tight loop over 4 lines: p50 reuse distance is small
        t = MemoryTrace.loads(
            np.zeros(4000, np.int64),
            strided_pattern(0, 4000, 64, wrap_bytes=4 * 64),
        )
        c = characterize_trace(t)
        assert c.reuse_percentiles[50] == pytest.approx(3, abs=1)

    def test_cold_stream_percentiles_infinite(self):
        t = MemoryTrace.loads(np.zeros(1000, np.int64), strided_pattern(0, 1000, 64))
        c = characterize_trace(t)
        assert c.reuse_percentiles[90] == float("inf")

    def test_empty_trace(self):
        c = characterize_trace(MemoryTrace.empty())
        assert c.n_refs == 0

    def test_describe_readable(self):
        t = MemoryTrace.loads(np.zeros(200, np.int64), strided_pattern(0, 200, 16))
        text = characterize_trace(t).describe()
        assert "footprint" in text
        assert "stride +16" in text
