"""Conformance harness: oracle, differential, invariants, fuzz, CLI.

The fast tests here run in tier 1; the full-corpus differential pass,
fuzz batches and the end-to-end CLI run are marked ``slow``/``fuzz`` and
run in the dedicated full-suite CI job (see docs/testing.md).
"""

import json

import numpy as np
import pytest

from repro.cachesim.functional import FunctionalCacheSim, fully_associative_config
from repro.trace import MemoryTrace
from repro.validate import (
    CLASS_BOUNDS,
    DiffSettings,
    InvariantSettings,
    ValidationConfig,
    build_corpus,
    replay_fixture,
    run_differential,
    run_fuzz,
    run_invariants,
    run_validation,
)
from repro.validate.differential import diff_one, size_grid_for
from repro.validate.fuzz import TARGETS
from repro.validate.oracle import (
    COLD,
    oracle_miss_ratio_curve,
    oracle_miss_vector,
    stack_distances,
)
from repro.validate.report import REPORT_FORMAT


def brute_force_stack_distances(lines):
    """O(n^2) textbook LRU stack distance; the oracle must match it."""
    out = []
    for i, line in enumerate(lines):
        prev = [j for j in range(i) if lines[j] == line]
        if not prev:
            out.append(COLD)
        else:
            out.append(len(set(lines[prev[-1] + 1 : i])))
    return np.array(out, dtype=np.int64)


class TestOracle:
    def test_matches_brute_force(self, rng):
        lines = rng.integers(0, 40, size=500)
        expected = brute_force_stack_distances(lines.tolist())
        assert np.array_equal(stack_distances(lines), expected)

    def test_stream_is_all_cold(self):
        lines = np.arange(100)
        sd = stack_distances(lines)
        assert np.all(sd == COLD)

    def test_cyclic_reuse_distance(self):
        # A loop over k lines reuses each at stack distance k-1.
        k = 16
        lines = np.tile(np.arange(k), 5)
        sd = stack_distances(lines)
        assert np.all(sd[:k] == COLD)
        assert np.all(sd[k:] == k - 1)

    def test_miss_vector_thresholds(self):
        sd = np.array([COLD, 0, 3, 4, 5], dtype=np.int64)
        miss = oracle_miss_vector(sd, cache_lines=4)
        assert miss.tolist() == [True, False, False, True, True]

    def test_curve_is_monotone(self, rng):
        lines = rng.integers(0, 200, size=4000)
        sd = stack_distances(lines)
        sizes = np.array([1024, 4096, 16384, 65536], dtype=np.int64)
        curve = oracle_miss_ratio_curve(sd, sizes)
        assert curve.is_monotone_nonincreasing()

    def test_simulator_bit_identity(self, rng):
        # The sim and the oracle share no code; their per-access miss
        # vectors must still agree exactly on a fully-associative cache.
        addr = rng.integers(0, 100, size=2000) * 64
        trace = MemoryTrace.loads(np.zeros(len(addr), np.int64), addr)
        sd = stack_distances(trace.line_addr(64))
        for lines in (8, 32, 128):
            sim = FunctionalCacheSim(fully_associative_config(lines * 64, 64))
            sim.run(trace)
            assert np.array_equal(sim.last_miss, oracle_miss_vector(sd, lines))


class TestCorpus:
    def test_deterministic(self):
        a = build_corpus(seed=3, quick=True)
        b = build_corpus(seed=3, quick=True)
        assert [e.name for e in a] == [e.name for e in b]
        for x, y in zip(a, b):
            assert x.trace == y.trace

    def test_covers_all_classes(self):
        classes = {e.cls for e in build_corpus(seed=0, quick=True)}
        assert classes == set(CLASS_BOUNDS)

    def test_size(self):
        assert len(build_corpus(seed=0, quick=True)) >= 25

    def test_size_grid_straddles_footprint(self):
        sizes = size_grid_for(1024)
        assert sizes[0] < 1024 * 64 < sizes[-1]


class TestDifferentialFast:
    def test_stream_and_chase_pass(self):
        corpus = [
            e
            for e in build_corpus(seed=0, quick=True)
            if e.name in ("stream-8B", "chase-512", "random-64k")
        ]
        assert len(corpus) == 3
        for result in run_differential(corpus, DiffSettings()):
            assert result.passed, result.failures
            assert result.sim_matches_oracle
            assert result.backends_identical

    def test_result_dict_shape(self):
        entry = build_corpus(seed=0, quick=True)[0]
        doc = diff_one(entry, DiffSettings()).as_dict()
        assert {"name", "class", "linf", "l1", "failures", "passed"} <= set(doc)


class TestInvariantsFast:
    def test_workload_entry_invariants(self):
        corpus = [
            e
            for e in build_corpus(seed=0, quick=True)
            if e.name in ("strided-64-256k", "workload-stream-chase")
        ]
        results = run_invariants(corpus, InvariantSettings())
        assert results, "no invariant checks ran"
        failed = [r for r in results if not r.ok]
        assert not failed, [f"{r.invariant}/{r.trace}: {r.detail}" for r in failed]
        # the program-bearing entry must exercise the rewrite checks
        assert any(r.invariant == "rewrite-preserves-semantics" for r in results)
        assert any(r.invariant == "bypass-model-consistent" for r in results)


class TestFuzzFast:
    def test_small_batch_passes(self):
        result = run_fuzz(seed=0, cases_per_target=3)
        assert result.cases_run == 3 * len(TARGETS)
        assert result.passed, [f.as_dict() for f in result.failures]

    def test_fuzz_is_deterministic(self):
        a = run_fuzz(seed=5, cases_per_target=2)
        b = run_fuzz(seed=5, cases_per_target=2)
        assert a.as_dict() == b.as_dict()

    def test_committed_fixtures_stay_fixed(self, fuzz_fixture_paths):
        # Every shrunk repro committed under tests/fixtures/fuzz must
        # keep passing: replay_fixture returns the error or None.
        assert fuzz_fixture_paths, "no committed fuzz fixtures found"
        for path in fuzz_fixture_paths:
            assert replay_fixture(path) is None, f"{path.name} regressed"


@pytest.fixture
def fuzz_fixture_paths(request):
    directory = request.config.rootpath / "tests" / "fixtures" / "fuzz"
    return sorted(directory.glob("*.json"))


@pytest.mark.slow
@pytest.mark.diff
class TestDifferentialFull:
    def test_quick_corpus_clean(self):
        corpus = build_corpus(seed=0, quick=True)
        results = run_differential(corpus, DiffSettings())
        failed = [r for r in results if not r.passed]
        assert not failed, {r.name: r.failures for r in failed}

    def test_invariants_clean(self):
        corpus = build_corpus(seed=0, quick=True)
        results = run_invariants(corpus, InvariantSettings())
        failed = [r for r in results if not r.ok]
        assert not failed, [f"{r.invariant}/{r.trace}: {r.detail}" for r in failed]


@pytest.mark.fuzz
class TestFuzzBatch:
    def test_full_batch(self):
        result = run_fuzz(seed=0, cases_per_target=25)
        assert result.cases_run == 25 * len(TARGETS)
        assert result.passed, [f.as_dict() for f in result.failures]


@pytest.mark.slow
class TestEndToEnd:
    def test_run_validation_report(self, tmp_path):
        report = run_validation(
            ValidationConfig(corpus_seed=0, quick=True, fuzz_cases=2, run_self_test=False)
        )
        assert report.diff_passed and report.invariants_passed and report.fuzz_passed
        doc = report.to_dict()
        assert doc["format"] == REPORT_FORMAT
        assert doc["summary"]["passed"]

    def test_cli_quick(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(
            ["validate", "--quick", "--fuzz-cases", "2", "--json-out", str(out)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["format"] == REPORT_FORMAT
        assert doc["summary"]["passed"] is True
        assert doc["selftest"] and all(o["detected"] for o in doc["selftest"])
