"""Tier-1 tests for the irregular-workload frontier.

Graph-analytics IR patterns, the graph benchmark suite, the structural
``A[B[i]]`` pairing, the indirect software rewrite (``swi``), and the
cross-core LLC helper prefetcher (``hwx``).
"""

import numpy as np
import pytest

from repro.api import CONFIGS, PLAN_KINDS, ExperimentSpec
from repro.core.report import PrefetchDecision
from repro.errors import ProgramError, WorkloadError
from repro.experiments import runner
from repro.experiments.engine import ExperimentEngine
from repro.hwpref import (
    PrefetchTuning,
    cross_core_prefetcher_for,
    index_directory_for,
)
from repro.isa import (
    IndexedAccess,
    IndirectPrefetch,
    Kernel,
    Load,
    Prefetch,
    Program,
    StridedAccess,
    execute_program,
    insert_prefetches,
)
from repro.trace import MemOp
from repro.workloads import (
    GRAPH_BENCHMARKS,
    WorkloadRecipe,
    build_program,
    generate_workload,
    list_workloads,
    workload_seed,
)

MACHINE = "amd-phenom-ii"
SCALE = 0.02


def indirect_program(trips=512, ahead=0):
    """Minimal A[B[i]] kernel: strided index walk + indexed gather."""
    idx_base = 1 << 22
    data_base = 1 << 26
    n_indices = 256
    body = [
        Load("bwalk", StridedAccess(idx_base, 8, wrap_bytes=n_indices * 8)),
        Load(
            "gather",
            IndexedAccess(
                base=data_base,
                region_bytes=1 << 20,
                index_base=idx_base,
                n_indices=n_indices,
                index_seed=42,
            ),
        ),
    ]
    if ahead:
        body.append(IndirectPrefetch(target="gather", ahead=ahead))
    return Program("indirect-demo", (Kernel("k", tuple(body), trips=trips),))


class TestGraphBenchmarks:
    def test_suite_registration(self):
        assert list_workloads(suite="graph") == ["bfs", "hashjoin", "pagerank"]
        assert sorted(s.name for s in GRAPH_BENCHMARKS) == [
            "bfs", "hashjoin", "pagerank",
        ]

    @pytest.mark.parametrize("name", ["pagerank", "hashjoin"])
    def test_indirect_pairs_present(self, name):
        pairs = build_program(name, scale=SCALE).indirect_pairs()
        assert pairs, f"{name} should carry an A[B[i]] pair"
        for data_pc, (index_pc, stride) in pairs.items():
            assert data_pc != index_pc
            assert stride > 0

    def test_bfs_has_no_pairs(self):
        # bfs is frontier/visited traversal — no index-array indirection,
        # so the cross-core helper must stay silent on it.
        assert build_program("bfs", scale=SCALE).indirect_pairs() == {}

    @pytest.mark.parametrize("name", ["pagerank", "bfs", "hashjoin"])
    def test_build_and_execute_deterministic(self, name):
        seed = workload_seed(name, "ref")
        a = build_program(name, scale=SCALE)
        b = build_program(name, scale=SCALE)
        assert a == b
        ta = execute_program(a, seed=seed).trace
        tb = execute_program(b, seed=seed).trace
        assert np.array_equal(ta.addr, tb.addr)
        assert np.array_equal(ta.pc, tb.pc)
        assert np.array_equal(ta.op, tb.op)

    def test_input_sets_change_footprint(self):
        ref = build_program("pagerank", "ref", scale=SCALE)
        alt = build_program("pagerank", "alt", scale=SCALE)
        assert ref != alt


class TestIndirectPairs:
    def test_structural_match(self):
        program = indirect_program()
        pc = program.pc_map()
        assert program.indirect_pairs() == {
            pc[("k", "gather")]: (pc[("k", "bwalk")], 8)
        }

    def test_unmatched_index_base_yields_no_pair(self):
        program = Program(
            "orphan",
            (
                Kernel(
                    "k",
                    (
                        Load(
                            "gather",
                            IndexedAccess(
                                base=1 << 26,
                                region_bytes=1 << 20,
                                index_base=1 << 22,  # no load walks this
                                n_indices=64,
                                index_seed=7,
                            ),
                        ),
                    ),
                    trips=64,
                ),
            ),
        )
        assert program.indirect_pairs() == {}


class TestIndirectPrefetchSemantics:
    def test_prefetch_addresses_run_ahead_of_target(self):
        ahead = 16
        plain = execute_program(indirect_program(), seed=3)
        rewritten = execute_program(indirect_program(ahead=ahead), seed=3)
        trace = rewritten.trace
        gather_pc = indirect_program().pc_map()[("k", "gather")]
        demand = trace.addr[(trace.pc == gather_pc) & (trace.op != int(MemOp.PREFETCH))]
        issued = trace.addr[(trace.pc == gather_pc) & (trace.op == int(MemOp.PREFETCH))]
        # Every prefetch is the gather's own demand address `ahead`
        # iterations later, tail clamped to the last iteration.
        expected = np.concatenate(
            (demand[ahead:], np.full(ahead, demand[-1]))
        )
        assert np.array_equal(issued, expected)
        # The demand stream itself is untouched by the insertion.
        plain_demand = plain.trace.addr[plain.trace.pc == gather_pc]
        assert np.array_equal(demand, plain_demand)

    def test_validation(self):
        with pytest.raises(ProgramError):
            IndirectPrefetch(target="gather", ahead=0)
        with pytest.raises(ProgramError):
            IndirectPrefetch(target="", ahead=8)


class TestIndirectRewrite:
    def decision(self, program, ahead=24):
        pc = program.pc_map()
        return PrefetchDecision(
            pc=pc[("k", "gather")],
            stride=8,
            distance_bytes=ahead * 8,
            nta=False,
            indirect_ahead=ahead,
            index_pc=pc[("k", "bwalk")],
        )

    def test_two_instruction_insertion(self):
        program = indirect_program()
        rewritten = insert_prefetches(program, [self.decision(program)])
        body = rewritten.kernels[0].body
        kinds = [type(i).__name__ for i in body]
        # prefetch B[i+d] rides the index walk; IndirectPrefetch covers
        # the gather: the paper-style two-instruction rewrite.
        assert kinds == ["Load", "Prefetch", "Load", "IndirectPrefetch"]
        assert isinstance(body[1], Prefetch) and body[1].target == "bwalk"
        assert body[3].target == "gather" and body[3].ahead == 24

    def test_demand_stream_preserved(self):
        program = indirect_program()
        rewritten = insert_prefetches(program, [self.decision(program)])
        before = execute_program(program, seed=9).trace
        after = execute_program(rewritten, seed=9).trace.demand_only()
        assert np.array_equal(before.demand_only().addr, after.addr)
        assert np.array_equal(before.demand_only().pc, after.pc)

    def test_unknown_index_pc_rejected(self):
        program = indirect_program()
        bad = PrefetchDecision(
            pc=program.pc_map()[("k", "gather")],
            stride=8,
            distance_bytes=64,
            nta=False,
            indirect_ahead=8,
            index_pc=999,
        )
        with pytest.raises(ProgramError):
            insert_prefetches(program, [bad])


class TestCrossCorePrefetcher:
    def test_index_directory(self):
        program = build_program("pagerank", scale=SCALE)
        directory = index_directory_for(program)
        assert directory
        (index_pc, region), = directory.items()
        values = region.index_values()
        assert len(values) == region.n_indices
        assert (values >= 0).all() and (values < region.n_slots).all()

    def test_empty_directory_issues_nothing(self):
        program = build_program("bfs", scale=SCALE)
        pf = cross_core_prefetcher_for(program)
        trace = execute_program(program, seed=1).trace
        lines = trace.addr // 64
        ev, tgt, fill = pf.observe_batch(
            trace.pc, trace.addr, lines, np.zeros(len(lines), dtype=bool)
        )
        assert len(ev) == 0

    def test_fills_are_llc_only(self):
        program = indirect_program()
        pf = cross_core_prefetcher_for(program)
        trace = execute_program(program, seed=5).trace
        issued = []
        for i in range(len(trace)):
            issued += pf.observe(
                int(trace.pc[i]), int(trace.addr[i]), int(trace.addr[i]) // 64, False
            )
        assert issued
        assert all(not req.fill_l2 for req in issued)

    def test_tuning_disable_and_degree_scale(self):
        program = indirect_program()
        trace = execute_program(program, seed=5).trace
        lines = trace.addr // 64
        hits = np.zeros(len(lines), dtype=bool)

        def issues(tuning):
            pf = cross_core_prefetcher_for(program)
            if tuning is not None:
                pf.apply_tuning(tuning)
            ev, _, _ = pf.observe_batch(trace.pc, trace.addr, lines, hits)
            return len(ev)

        full = issues(None)
        assert full > 0
        assert issues(PrefetchTuning(enabled=False)) == 0
        scaled = issues(PrefetchTuning(degree_scale=0.25))
        assert 0 < scaled < full

    def test_reset_forgets_pointer_state(self):
        program = indirect_program()
        trace = execute_program(program, seed=5).trace
        lines = trace.addr // 64
        hits = np.zeros(len(lines), dtype=bool)
        pf = cross_core_prefetcher_for(program)
        first = pf.observe_batch(trace.pc, trace.addr, lines, hits)
        pf.reset()
        second = pf.observe_batch(trace.pc, trace.addr, lines, hits)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])


class TestGeneratorGraphFamily:
    def test_graph_recipe_emits_graph_patterns(self):
        recipe = WorkloadRecipe(
            stream_weight=0.1,
            csr_weight=0.3,
            bfs_weight=0.2,
            hash_weight=0.2,
            indirect_weight=0.2,
            n_instructions=8,
            trips=128,
        )
        program = generate_workload(recipe, seed=11)
        names = {
            type(i.pattern).__name__
            for k in program.kernels
            for i in k.mem_instructions
        }
        assert {"CSRAccess", "BFSAccess", "HashProbeAccess", "IndexedAccess"} <= names
        assert program.indirect_pairs()  # each indirect slot emits a pair
        assert generate_workload(recipe, seed=11) == program

    def test_legacy_recipe_untouched_by_graph_family(self):
        recipe = WorkloadRecipe(stream_weight=0.6, chase_weight=0.4, trips=128)
        program = generate_workload(recipe, seed=7)
        names = {
            type(i.pattern).__name__
            for k in program.kernels
            for i in k.mem_instructions
        }
        assert names <= {"StridedAccess", "ChaseAccess"}
        assert program.indirect_pairs() == {}

    def test_all_zero_weights_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadRecipe(stream_weight=0.0)


class TestNewConfigs:
    def test_config_surface(self):
        assert "swi" in CONFIGS and "hwx" in CONFIGS
        assert "swi" in PLAN_KINDS
        assert ExperimentSpec("pagerank", MACHINE, "swi", "ref", SCALE).plan_kind == "swi"
        assert ExperimentSpec("pagerank", MACHINE, "hwx", "ref", SCALE).plan_kind is None

    def test_swi_plan_contains_indirect_decision(self):
        spec = ExperimentSpec("pagerank", MACHINE, "swi", "ref", SCALE)
        plan = runner.plan_for_spec(spec)
        indirect = [d for d in plan.decisions if d.indirect_ahead]
        assert indirect, "swi on pagerank should emit an indirect decision"
        assert all(d.index_pc is not None for d in indirect)

    def test_swi_and_hwx_run_end_to_end(self):
        base = ExperimentSpec("pagerank", MACHINE, "baseline", "ref", SCALE)
        swi = base.with_config("swi")
        hwx = base.with_config("hwx")
        baseline = runner.run_spec(base)
        swi_stats = runner.run_spec(swi)
        hwx_stats = runner.run_spec(hwx)
        assert swi_stats.sw_prefetches > 0
        assert hwx_stats.hw_prefetches > 0
        # Both mechanisms must actually help on the indirect-heavy kernel.
        assert swi_stats.cycles < baseline.cycles
        assert hwx_stats.cycles < baseline.cycles

    def test_parallel_engine_deterministic_for_new_configs(self):
        grid = ExperimentSpec.grid(
            ("pagerank", "hashjoin"), (MACHINE,), ("swi", "hwx"), scales=(SCALE,)
        )
        serial = ExperimentEngine(jobs=1).run(grid)
        runner.clear_memo()
        parallel = ExperimentEngine(jobs=2).run(grid)
        assert {s: r.cycles for s, r in serial.items()} == {
            s: r.cycles for s, r in parallel.items()
        }
        for spec in grid:
            assert serial[spec].sw_prefetches == parallel[spec].sw_prefetches
            assert serial[spec].hw_prefetches == parallel[spec].hw_prefetches
