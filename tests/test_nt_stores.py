"""Tests for the non-temporal store extension."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy
from repro.core import (
    OptimizerSettings,
    PrefetchOptimizer,
    apply_nt_stores,
    identify_nt_stores,
)
from repro.errors import ProgramError
from repro.isa import (
    Kernel,
    Load,
    Program,
    Store,
    StridedAccess,
    convert_nt_stores,
    emit,
    execute_program,
    parse,
)
from repro.sampling import RuntimeSampler
from repro.statstack import PerPCMissRatios, StatStackModel
from repro.trace import MemOp, MemoryTrace
from repro.trace.synthesis import strided_pattern


def store_trace(n=2000, stride=64, op=MemOp.STORE):
    addr = strided_pattern(0, n, stride)
    return MemoryTrace(np.zeros(n, np.int64), addr, np.full(n, int(op), np.uint8))


class TestHierarchySemantics:
    def test_nt_store_does_not_fill_caches(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        s = h.run(store_trace(op=MemOp.STORE_NT))
        assert len(h.l1) == 0 and len(h.llc) == 0
        assert s.dram_fills == 0
        assert s.nt_store_writes > 0

    def test_nt_store_halves_store_stream_traffic(self, tiny_machine):
        # a cold store stream: normal stores fetch + write back (2 lines
        # of traffic per line), NT stores write once
        normal = CacheHierarchy(tiny_machine)
        s1 = normal.run(store_trace())
        normal.drain_writebacks(s1)
        nt = CacheHierarchy(tiny_machine)
        s2 = nt.run(store_trace(op=MemOp.STORE_NT))
        nt.drain_writebacks(s2)
        assert s2.dram_bytes <= 0.6 * s1.dram_bytes

    def test_write_combining_merges_subline_writes(self, tiny_machine):
        # stride-8 NT stores touch each line 8 times but write it once
        h = CacheHierarchy(tiny_machine)
        s = h.run(store_trace(n=800, stride=8, op=MemOp.STORE_NT))
        assert s.nt_store_writes == pytest.approx(100, abs=2)

    def test_nt_store_invalidates_cached_copy(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        warm = MemoryTrace.loads([0], [0])
        h.run(warm)
        assert h.l1.contains(0)
        h.run(MemoryTrace([1], [0], [MemOp.STORE_NT]))
        assert not h.l1.contains(0)
        assert not h.llc.contains(0)

    def test_read_after_nt_store_misses(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        t = MemoryTrace(
            [0, 1], [0, 0], [MemOp.STORE_NT, MemOp.LOAD]
        )
        s = h.run(t)
        assert s.l1.misses == 1  # the load pays the full miss


class TestTransforms:
    def test_apply_nt_stores_trace_level(self):
        t = MemoryTrace([0, 1, 0], [0, 64, 128], [MemOp.STORE, MemOp.STORE, MemOp.LOAD])
        out = apply_nt_stores(t, [0])
        assert out.op.tolist() == [int(MemOp.STORE_NT), int(MemOp.STORE), int(MemOp.LOAD)]
        assert out.n_demand == 3  # still demand events

    def test_apply_nt_stores_never_touches_loads(self):
        t = MemoryTrace.loads([0, 0], [0, 64])
        out = apply_nt_stores(t, [0])
        assert out is t or np.array_equal(out.op, t.op)

    def test_convert_nt_stores_ir_level(self):
        p = Program(
            "p",
            (
                Kernel(
                    "k",
                    (
                        Load("x", StridedAccess(0, 8)),
                        Store("y", StridedAccess(1 << 20, 64)),
                    ),
                    trips=50,
                ),
            ),
        )
        converted = convert_nt_stores(p, [p.pc_of("k", "y")])
        body = converted.kernels[0].body
        assert isinstance(body[1], Store) and body[1].nt
        # trace matches the trace-level transform
        via_ir = execute_program(converted, seed=1).trace
        via_trace = apply_nt_stores(execute_program(p, seed=1).trace, [1])
        assert via_ir == via_trace

    def test_convert_unknown_pc_rejected(self):
        p = Program("p", (Kernel("k", (Load("x", StridedAccess(0, 8)),), trips=1),))
        with pytest.raises(ProgramError):
            convert_nt_stores(p, [42])

    def test_assembly_roundtrip_storent(self):
        p = Program(
            "p",
            (
                Kernel(
                    "k",
                    (Store("y", StridedAccess(0, 64), nt=True),),
                    trips=8,
                ),
            ),
        )
        q = parse(emit(p))
        assert q.kernels[0].body[0].nt
        assert execute_program(q, 3).trace == execute_program(p, 3).trace


class TestAnalysis:
    def _sampled(self, trace, machine):
        sampling = RuntimeSampler(rate=5e-3, seed=2).sample(trace)
        model = StatStackModel(sampling.reuse, machine.line_bytes)
        return sampling, PerPCMissRatios(model, machine)

    def test_streaming_store_selected(self, amd):
        n = 80_000
        pc = np.tile([0, 1], n // 2)
        addr = np.empty(n, np.int64)
        addr[0::2] = strided_pattern(0, n // 2, 16)
        addr[1::2] = strided_pattern(1 << 31, n // 2, 16)
        op = np.where(pc == 1, int(MemOp.STORE), int(MemOp.LOAD)).astype(np.uint8)
        t = MemoryTrace(pc, addr, op)
        sampling, ratios = self._sampled(t, amd)
        assert identify_nt_stores(sampling, ratios, {1}) == [1]

    def test_read_back_store_rejected(self, amd):
        # pc1 stores a line, pc0 reads it right after -> unsafe
        n = 80_000
        pc = np.tile([1, 0], n // 2)
        base = strided_pattern(0, n // 2, 64)
        addr = np.empty(n, np.int64)
        addr[0::2] = base
        addr[1::2] = base
        op = np.where(pc == 1, int(MemOp.STORE), int(MemOp.LOAD)).astype(np.uint8)
        t = MemoryTrace(pc, addr, op)
        sampling, ratios = self._sampled(t, amd)
        assert identify_nt_stores(sampling, ratios, {1}) == []

    def test_hitting_store_rejected(self, amd):
        # a store that never misses has no fill to save
        n = 40_000
        t = MemoryTrace(
            np.zeros(n, np.int64),
            strided_pattern(0, n, 8, wrap_bytes=8 * 1024),
            np.full(n, int(MemOp.STORE), np.uint8),
        )
        sampling, ratios = self._sampled(t, amd)
        assert identify_nt_stores(sampling, ratios, {0}) == []

    def test_pipeline_integration(self, amd):
        from repro.workloads import build_program, workload_seed

        program = build_program("lbm", "ref", 0.1)
        execution = execute_program(program, seed=workload_seed("lbm", "ref"))
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(execution.trace)
        plan = PrefetchOptimizer(
            amd, OptimizerSettings(enable_nt_stores=True)
        ).analyze(
            sampling,
            refs_per_pc=program.refs_per_pc(),
            store_pcs=program.store_pcs(),
        )
        # lbm's f_out stream store is the canonical candidate
        assert program.pc_of("collide", "f_out") in plan.nt_stores

    def test_end_to_end_traffic_reduction(self, amd):
        from repro.workloads import build_program, workload_seed

        program = build_program("lbm", "ref", 0.15)
        execution = execute_program(program, seed=workload_seed("lbm", "ref"))
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(execution.trace)
        opt = PrefetchOptimizer(amd, OptimizerSettings(enable_nt_stores=True))
        plan = opt.analyze(
            sampling,
            refs_per_pc=program.refs_per_pc(),
            store_pcs=program.store_pcs(),
        )
        from repro.core import apply_prefetch_plan

        swnt_trace = apply_prefetch_plan(execution.trace, plan)
        nts_trace = apply_nt_stores(swnt_trace, plan.nt_stores)

        def run(tr):
            h = CacheHierarchy(amd)
            s = h.run(tr, execution.work_per_memop, execution.mlp)
            h.drain_writebacks(s)
            return s

        swnt = run(swnt_trace)
        nts = run(nts_trace)
        assert nts.dram_bytes < swnt.dram_bytes
        assert nts.cycles <= swnt.cycles * 1.05
