"""Small-surface tests: formatting helpers, throttle base, stats containers."""

import numpy as np
import pytest

from repro.cachesim.stats import LevelStats, PCStats, RunStats
from repro.experiments.tables import gbs, pct, render_series, render_table
from repro.hwpref.base import NullPrefetcher, PrefetchRequest
from repro.trace.util import next_same_value_index


class TestFormatting:
    def test_pct(self):
        assert pct(0.163) == "+16.3%"
        assert pct(-0.04, digits=0) == "-4%"

    def test_gbs(self):
        assert gbs(3.456) == "3.46 GB/s"

    def test_render_table_title_optional(self):
        text = render_table(("h",), [("v",)])
        assert text.splitlines()[0] == "h"

    def test_render_series_single_point(self):
        text = render_series({"a": [0.5]}, points=2, fmt="{:.1f}")
        assert text.count("0.5") == 2  # same value at both percentiles


class TestPrefetchRequest:
    def test_negative_line_rejected(self):
        with pytest.raises(ValueError):
            PrefetchRequest(-1)

    def test_fill_l2_default(self):
        assert PrefetchRequest(5).fill_l2 is True


class TestThrottleBase:
    def test_no_callback_means_no_throttle(self):
        pf = NullPrefetcher()
        assert pf._throttle_factor() == 1.0

    def test_callback_floor(self):
        pf = NullPrefetcher(utilisation=lambda: 1.0)
        assert pf._throttle_factor() == pytest.approx(0.25)

    def test_callback_midpoint(self):
        pf = NullPrefetcher(utilisation=lambda: 0.85)
        assert 0.25 < pf._throttle_factor() < 1.0


class TestStatsContainers:
    def test_level_stats_miss_ratio(self):
        s = LevelStats(accesses=10, misses=3)
        assert s.miss_ratio == pytest.approx(0.3)
        assert LevelStats().miss_ratio == 0.0

    def test_run_stats_ipc(self):
        s = RunStats(cycles=100.0, instructions=250)
        assert s.ipc == pytest.approx(2.5)
        assert RunStats().ipc == 0.0

    def test_run_stats_bandwidth_zero_cycles(self):
        assert RunStats().bandwidth_gbs(3.0) == 0.0

    def test_llc_insertions_excludes_nta(self):
        s = RunStats(dram_fills=100, nta_fills=30)
        assert s.llc_insertions == 70

    def test_pc_stats_as_arrays_aligned(self):
        s = PCStats()
        s.record(5, True)
        s.record(2, False)
        s.record(5, False)
        pcs, acc, mis = s.as_arrays()
        assert pcs.tolist() == [2, 5]
        assert acc.tolist() == [1, 2]
        assert mis.tolist() == [0, 1]

    def test_pc_stats_miss_ratio_unknown(self):
        assert PCStats().miss_ratio(7) == 0.0


class TestNextSameValueUtil:
    def test_duplicated_runs(self):
        assert next_same_value_index(np.array([1, 1, 1])).tolist() == [1, 2, -1]

    def test_interleaved(self):
        assert next_same_value_index(np.array([3, 4, 3, 4])).tolist() == [2, 3, -1, -1]
