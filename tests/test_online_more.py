"""Additional tests: online optimiser internals and trace/plan workflows."""

import numpy as np
import pytest

from repro.config import amd_phenom_ii
from repro.core import (
    OnlineOptimizer,
    OptimizationReport,
    PrefetchOptimizer,
    apply_prefetch_plan,
    load_plan,
    save_plan,
)
from repro.isa import execute_program
from repro.sampling import RuntimeSampler
from repro.trace import MemoryTrace, load_trace, save_trace
from repro.trace.synthesis import strided_pattern
from repro.workloads import WorkloadRecipe, build_program, generate_workload, workload_seed


class TestOnlineInternals:
    def test_single_window_equals_offline_shape(self, amd):
        n = 60_000
        trace = MemoryTrace.loads(np.zeros(n, np.int64), strided_pattern(0, n, 16))
        online = OnlineOptimizer(amd, window_refs=n)
        result = online.run(trace, work_per_memop=8.0, mlp=8.0)
        assert result.n_windows == 1
        # the single-window plan matches what offline analysis would pick
        offline = PrefetchOptimizer(amd).analyze(
            RuntimeSampler(rate=5e-3, seed=0).sample(trace)
        )
        assert result.plans[0].prefetched_pcs == offline.prefetched_pcs

    def test_history_smooths_plan_changes(self, amd):
        # same workload, alternating noise: longer history -> fewer flips
        n = 30_000
        parts = []
        for i in range(6):
            addr = strided_pattern(i * (n * 16), n, 16)
            parts.append(MemoryTrace.loads(np.zeros(n, np.int64), addr))
        trace = MemoryTrace.concat(parts)
        short = OnlineOptimizer(amd, window_refs=n, history_windows=1).run(
            trace, 8.0, 8.0
        )
        long = OnlineOptimizer(amd, window_refs=n, history_windows=3).run(
            trace, 8.0, 8.0
        )
        assert long.plan_changes() <= short.plan_changes() + 1

    def test_empty_plan_first_window(self, amd):
        n = 20_000
        trace = MemoryTrace.loads(np.zeros(2 * n, np.int64), strided_pattern(0, 2 * n, 16))
        result = OnlineOptimizer(amd, window_refs=n).run(trace, 8.0, 8.0)
        # the first window executed without prefetches (cold start), so
        # its plan only influences window 2
        assert result.n_windows == 2


class TestShipAPlanWorkflow:
    """The deployment story: profile on host A, optimise on host B."""

    def test_roundtrip_through_files(self, tmp_path, amd):
        # host A: execute + save trace
        program = build_program("soplex", "ref", 0.05)
        execution = execute_program(program, seed=workload_seed("soplex", "ref"))
        save_trace(execution.trace, tmp_path / "trace.npz")

        # host B: load trace, analyse, ship the plan
        trace = load_trace(tmp_path / "trace.npz")
        sampling = RuntimeSampler(rate=5e-3, seed=1).sample(trace)
        plan = PrefetchOptimizer(amd).analyze(sampling)
        save_plan(plan, tmp_path / "plan.json")

        # host A again: load plan, rewrite, run
        shipped: OptimizationReport = load_plan(tmp_path / "plan.json")
        optimised = apply_prefetch_plan(trace, shipped)
        assert optimised.n_prefetch > 0
        assert optimised.demand_only() == trace.demand_only()

    def test_generated_workload_roundtrip(self, tmp_path, amd):
        recipe = WorkloadRecipe(
            stream_weight=2, gather_weight=1, trips=20_000, footprint_bytes=4 << 20
        )
        program = generate_workload(recipe, seed=9)
        execution = execute_program(program, seed=9)
        sampling = RuntimeSampler(rate=5e-3, seed=9).sample(execution.trace)
        plan = PrefetchOptimizer(amd).analyze(
            sampling, refs_per_pc=program.refs_per_pc()
        )
        save_plan(plan, tmp_path / "gen.json")
        assert load_plan(tmp_path / "gen.json").prefetched_pcs == plan.prefetched_pcs
