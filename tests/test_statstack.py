"""Tests for the StatStack cache model."""

import numpy as np
import pytest

from repro.cachesim import FunctionalCacheSim
from repro.config import CacheConfig
from repro.errors import ModelError
from repro.sampling import RuntimeSampler, ReuseSampleSet, collect_reuse_samples
from repro.statstack import StatStackModel
from repro.trace import MemoryTrace
from repro.trace.synthesis import chase_pattern, strided_pattern


def full_samples(trace, line_bytes=64):
    """Sample every reference (exact reuse distribution)."""
    n = trace.n_demand
    return collect_reuse_samples(trace, np.arange(n), line_bytes)


class TestStackDistanceMath:
    def test_stream_never_reuses(self):
        # pure cold stream: every sample dangles -> mr == 1 at any size
        t = MemoryTrace.loads(np.zeros(1000, np.int64), np.arange(1000) * 64)
        m = StatStackModel(full_samples(t))
        assert m.miss_ratio(64 * 1024) == pytest.approx(1.0)
        assert m.dangling_fraction == pytest.approx(1.0)

    def test_tight_reuse_always_hits(self):
        # same line over and over -> rd 0 -> hits in any cache >= 1 line
        t = MemoryTrace.loads(np.zeros(1000, np.int64), np.zeros(1000, np.int64))
        m = StatStackModel(full_samples(t))
        assert m.miss_ratio(64) < 0.01

    def test_expected_stack_distance_monotone(self):
        t = MemoryTrace.loads(
            np.zeros(5000, np.int64), strided_pattern(0, 5000, 64, wrap_bytes=1 << 16)
        )
        m = StatStackModel(full_samples(t))
        d = np.array([1, 10, 100, 1000])
        sd = m.expected_stack_distance(d)
        assert np.all(np.diff(sd) >= 0)
        assert sd[0] <= 1.0 + 1e-9

    def test_loop_knee_location(self):
        # loop over exactly 128 lines: stack distance of every reuse is
        # 127 -> misses iff cache < 128 lines (8 kB)
        t = MemoryTrace.loads(
            np.zeros(6400, np.int64), strided_pattern(0, 6400, 64, wrap_bytes=128 * 64)
        )
        m = StatStackModel(full_samples(t))
        assert m.miss_ratio(64 * 64) > 0.9  # 64-line cache: misses
        assert m.miss_ratio(256 * 64) < 0.1  # 256-line cache: hits

    def test_rejects_empty(self):
        empty = np.empty(0, dtype=np.int64)
        with pytest.raises(ModelError):
            StatStackModel(ReuseSampleSet(empty, empty.copy(), empty.copy(), 0))

    def test_rejects_bad_line_size(self):
        t = MemoryTrace.loads([0, 0], [0, 0])
        with pytest.raises(ModelError):
            StatStackModel(full_samples(t), line_bytes=100)

    def test_miss_ratio_monotone_in_size(self):
        t = MemoryTrace.loads(
            np.zeros(8000, np.int64), strided_pattern(0, 8000, 64, wrap_bytes=1 << 19)
        )
        m = StatStackModel(full_samples(t))
        sizes = [4 * 1024, 64 * 1024, 512 * 1024, 4 << 20]
        ratios = [m.miss_ratio(s) for s in sizes]
        assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))


class TestPerPC:
    def test_pc_attribution(self):
        # pc 0 streams (never reuses), pc 1 hammers one line
        n = 2000
        pc = np.tile([0, 1], n // 2)
        addr = np.empty(n, np.int64)
        addr[0::2] = np.arange(n // 2) * 64
        addr[1::2] = 1 << 30
        t = MemoryTrace.loads(pc, addr)
        m = StatStackModel(full_samples(t))
        assert m.pc_miss_ratio(0, 64 * 1024) > 0.9
        assert m.pc_miss_ratio(1, 64 * 1024) < 0.1

    def test_unknown_pc_is_zero(self):
        t = MemoryTrace.loads([0, 0], [0, 0])
        m = StatStackModel(full_samples(t))
        assert m.pc_miss_ratio(99, 1024) == 0.0

    def test_sample_weight_sums_to_one(self):
        t = MemoryTrace.loads([0, 1, 0, 1] * 100, list(range(400)))
        m = StatStackModel(full_samples(t))
        total = sum(m.pc_sample_weight(pc) for pc in m.modelled_pcs())
        assert total == pytest.approx(1.0)


class TestAgainstFunctionalSim:
    """StatStack vs exact simulation — the paper's §IV validation."""

    @pytest.mark.parametrize("size_kb", [8, 64, 512])
    def test_strided_resweep(self, size_kb):
        t = MemoryTrace.loads(
            np.zeros(120_000, np.int64),
            strided_pattern(0, 120_000, 16, wrap_bytes=256 * 1024),
        )
        sampling = RuntimeSampler(rate=5e-3, seed=2).sample(t)
        model = StatStackModel(sampling.reuse)
        sim = FunctionalCacheSim(
            CacheConfig("T", size_kb * 1024, ways=min(16, size_kb * 16))
        )
        sim.run(t)
        assert model.miss_ratio(size_kb * 1024) == pytest.approx(
            sim.miss_ratio(), abs=0.05
        )

    def test_chase_working_set(self, rng):
        addr = chase_pattern(rng, 0, 3000, 90_000, node_bytes=64)
        t = MemoryTrace.loads(np.zeros(len(addr), np.int64), addr)
        sampling = RuntimeSampler(rate=5e-3, seed=4).sample(t)
        model = StatStackModel(sampling.reuse)
        # 3000 nodes ~ 192 kB: small cache misses, big cache hits
        sim_small = FunctionalCacheSim(CacheConfig("S", 32 * 1024, ways=8))
        sim_small.run(t)
        sim_big = FunctionalCacheSim(CacheConfig("B", 512 * 1024, ways=8))
        sim_big.run(t)
        assert model.miss_ratio(32 * 1024) == pytest.approx(
            sim_small.miss_ratio(), abs=0.08
        )
        assert model.miss_ratio(512 * 1024) == pytest.approx(
            sim_big.miss_ratio(), abs=0.08
        )
