"""Tests for the mini-ISA: programs, interpreter, assembly, rewriter."""

import numpy as np
import pytest

from repro.core.report import PrefetchDecision
from repro.errors import ProgramError
from repro.isa import (
    ChaseAccess,
    FixedAccess,
    Kernel,
    Load,
    Prefetch,
    Program,
    Store,
    StreamAccess,
    StridedAccess,
    SweepAccess,
    emit,
    execute_program,
    insert_prefetches,
    parse,
)
from repro.trace import MemOp


def two_kernel_program():
    return Program(
        "demo",
        (
            Kernel(
                "a",
                (
                    Load("x", StreamAccess(0x1000, 8)),
                    Store("y", StridedAccess(0x9000, 16)),
                ),
                trips=10,
                work_per_memop=4.0,
                mlp=3.0,
            ),
            Kernel(
                "b",
                (Load("z", FixedAccess(0x5000)),),
                trips=5,
                work_per_memop=2.0,
                mlp=1.0,
            ),
        ),
    )


class TestProgram:
    def test_pc_assignment_in_order(self):
        p = two_kernel_program()
        assert p.pc_of("a", "x") == 0
        assert p.pc_of("a", "y") == 1
        assert p.pc_of("b", "z") == 2
        assert p.label_of(1) == ("a", "y")

    def test_unknown_label(self):
        with pytest.raises(ProgramError):
            two_kernel_program().pc_of("a", "nope")

    def test_refs_per_pc(self):
        p = two_kernel_program()
        assert p.refs_per_pc() == {0: 10, 1: 10, 2: 5}
        assert p.n_dynamic_refs == 25

    def test_duplicate_kernel_names_rejected(self):
        k = Kernel("k", (Load("x", FixedAccess(0)),), trips=1)
        with pytest.raises(ProgramError):
            Program("p", (k, k))

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ProgramError):
            Kernel(
                "k",
                (Load("x", FixedAccess(0)), Load("x", FixedAccess(8))),
                trips=1,
            )

    def test_prefetch_unknown_target_rejected(self):
        with pytest.raises(ProgramError):
            Kernel("k", (Load("x", FixedAccess(0)), Prefetch("y", 64)), trips=1)

    def test_empty_body_rejected(self):
        with pytest.raises(ProgramError):
            Kernel("k", (), trips=1)


class TestInterpreter:
    def test_program_order(self):
        p = two_kernel_program()
        res = execute_program(p, seed=0)
        # kernel a: x,y alternating; then kernel b
        assert res.trace.pc[:4].tolist() == [0, 1, 0, 1]
        assert res.trace.pc[-5:].tolist() == [2] * 5

    def test_deterministic(self):
        p = two_kernel_program()
        assert execute_program(p, 5).trace == execute_program(p, 5).trace

    def test_seed_changes_random_patterns(self):
        p = Program(
            "r",
            (Kernel("k", (Load("c", ChaseAccess(0, 64, 64)),), trips=32),),
        )
        a = execute_program(p, 1).trace
        b = execute_program(p, 2).trace
        assert not np.array_equal(a.addr, b.addr)

    def test_work_and_mlp_are_ref_weighted(self):
        p = two_kernel_program()
        res = execute_program(p, 0)
        # kernel a: 20 refs at work 4; kernel b: 5 refs at work 2
        assert res.work_per_memop == pytest.approx((20 * 4 + 5 * 2) / 25)
        assert res.mlp == pytest.approx((20 * 3 + 5 * 1) / 25)

    def test_kernel_slices(self):
        p = two_kernel_program()
        res = execute_program(p, 0)
        assert len(res.kernel_trace("a")) == 20
        assert len(res.kernel_trace("b")) == 5
        with pytest.raises(ProgramError):
            res.kernel_trace("zzz")

    def test_prefetch_address_follows_target(self):
        p = Program(
            "pf",
            (
                Kernel(
                    "k",
                    (
                        Load("x", StreamAccess(0, 8)),
                        Prefetch("x", 640, nta=True),
                    ),
                    trips=4,
                ),
            ),
        )
        res = execute_program(p, 0)
        # events alternate load/prefetch; prefetch addr = load addr + 640
        loads = res.trace.addr[0::2]
        prefetches = res.trace.addr[1::2]
        assert np.array_equal(prefetches, loads + 640)
        assert np.all(res.trace.op[1::2] == int(MemOp.PREFETCH_NTA))


class TestRewriter:
    def test_insert_after_target(self):
        p = two_kernel_program()
        plan = [PrefetchDecision(pc=0, stride=8, distance_bytes=128, nta=False)]
        rewritten = insert_prefetches(p, plan)
        body = rewritten.kernels[0].body
        assert isinstance(body[0], Load)
        assert isinstance(body[1], Prefetch)
        assert body[1].target == "x"
        assert body[1].distance_bytes == 128

    def test_pcs_stable_after_rewrite(self):
        p = two_kernel_program()
        plan = [PrefetchDecision(pc=1, stride=16, distance_bytes=-64, nta=True)]
        rewritten = insert_prefetches(p, plan)
        assert rewritten.pc_map() == p.pc_map()

    def test_rewrite_preserves_demand_stream(self):
        p = two_kernel_program()
        plan = [
            PrefetchDecision(pc=0, stride=8, distance_bytes=128, nta=False),
            PrefetchDecision(pc=2, stride=8, distance_bytes=64, nta=True),
        ]
        rewritten = insert_prefetches(p, plan)
        orig = execute_program(p, 3).trace.demand_only()
        new = execute_program(rewritten, 3).trace.demand_only()
        assert orig == new

    def test_unknown_pc_rejected(self):
        with pytest.raises(ProgramError):
            insert_prefetches(
                two_kernel_program(),
                [PrefetchDecision(pc=42, stride=8, distance_bytes=64, nta=False)],
            )

    def test_empty_plan_is_identity(self):
        p = two_kernel_program()
        assert insert_prefetches(p, []) is p


class TestAssembly:
    def test_roundtrip_all_patterns(self):
        p = Program(
            "rt",
            (
                Kernel(
                    "k",
                    (
                        Load("a", StreamAccess(0x10, 8)),
                        Load("b", StridedAccess(0x20, -24, wrap_bytes=4096)),
                        Load("c", ChaseAccess(0x30, 128, 64)),
                        Load("d", SweepAccess(0x40, (256, 512), 64)),
                        Prefetch("a", 64),
                        Prefetch("b", -128, nta=True),
                        Store("e", StridedAccess(0x50, 8)),
                    ),
                    trips=16,
                    work_per_memop=2.5,
                    mlp=2.0,
                ),
            ),
        )
        q = parse(emit(p))
        assert execute_program(p, 9).trace == execute_program(q, 9).trace

    def test_parse_rejects_garbage(self):
        with pytest.raises(ProgramError):
            parse(".program x\n.kernel k trips=1 work=1 mlp=1\n  boom\n.end\n")

    def test_parse_requires_program_header(self):
        with pytest.raises(ProgramError):
            parse(".kernel k trips=1 work=1 mlp=1\n.end\n")

    def test_parse_requires_end(self):
        with pytest.raises(ProgramError):
            parse(".program p\n.kernel k trips=1 work=1 mlp=1\n")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            ".program p\n\n# a comment\n.kernel k trips=2 work=1.0 mlp=1.0\n"
            "  a: load fixed(addr=0x8)\n.end\n"
        )
        p = parse(text)
        assert p.kernels[0].trips == 2
