"""Focused tests of the contention model's mechanisms."""

import numpy as np
import pytest

from repro.config import amd_phenom_ii
from repro.errors import SimulationError
from repro.multicore.contention import AppProfile, _miss_scale, _throttle_factor, solve_mix
from repro.statstack.mrc import MissRatioCurve


def mrc(points):
    sizes = np.array([p[0] for p in points], dtype=np.int64)
    ratios = np.array([p[1] for p in points])
    return MissRatioCurve(sizes, ratios)


def profile(**kw):
    defaults = dict(
        name="app",
        cycles_alone=1e6,
        dram_lines=10_000,
        llc_insert_lines=10_000,
        mlp=2.0,
        mrc=mrc([(64 * 1024, 0.5), (8 << 20, 0.5)]),
        mr_full_llc=0.5,
    )
    defaults.update(kw)
    return AppProfile(**defaults)


class TestThrottleFactor:
    def test_no_throttle_below_70pct(self):
        assert _throttle_factor(0.0) == 1.0
        assert _throttle_factor(0.69) == 1.0

    def test_floor_at_saturation(self):
        assert _throttle_factor(1.0) == pytest.approx(0.25)

    def test_monotone(self):
        values = [_throttle_factor(r) for r in (0.7, 0.8, 0.9, 1.0)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestMissScale:
    def test_no_traffic_app(self):
        assert _miss_scale(profile(dram_lines=0, llc_insert_lines=0), 1 << 20) == 1.0

    def test_flat_curve_no_scaling(self):
        app = profile()
        assert _miss_scale(app, 1 << 20) == pytest.approx(1.0)

    def test_shrinking_share_raises_traffic(self):
        app = profile(
            mrc=mrc([(64 * 1024, 0.9), (1 << 20, 0.6), (8 << 20, 0.2)]),
            mr_full_llc=0.2,
        )
        small = _miss_scale(app, 512 * 1024)
        large = _miss_scale(app, 6 << 20)
        assert small > large >= 1.0

    def test_nta_fraction_immune(self):
        curve = mrc([(64 * 1024, 0.9), (8 << 20, 0.2)])
        polluting = profile(mrc=curve, mr_full_llc=0.2, llc_insert_lines=10_000)
        bypassing = profile(mrc=curve, mr_full_llc=0.2, llc_insert_lines=0)
        share = 512 * 1024
        assert _miss_scale(bypassing, share) == pytest.approx(1.0)
        assert _miss_scale(polluting, share) > 1.0


class TestThrottlingInMix:
    def test_throttleable_traffic_retired_under_pressure(self, amd):
        # four heavy HW-like apps: the model must retire speculative
        # lines rather than queue them all
        hw_app = profile(
            cycles_alone=2e5,
            dram_lines=30_000,
            llc_insert_lines=30_000,
            throttleable_lines=15_000,
            throttle_cycle_cost=10_000.0,
        )
        out = solve_mix(amd, [hw_app] * 4)
        # retired lines: final transfers below the solo figure
        assert all(c.dram_lines < 30_000 for c in out)

    def test_no_throttling_when_uncontended(self, amd):
        hw_app = profile(
            cycles_alone=1e8,  # extremely light offered load
            dram_lines=1_000,
            throttleable_lines=500,
            throttle_cycle_cost=1_000.0,
        )
        out = solve_mix(amd, [hw_app])
        assert out[0].dram_lines == pytest.approx(1_000, rel=0.01)
        assert out[0].cycles == pytest.approx(1e8, rel=0.01)

    def test_exposure_discounts_extra_miss_latency(self, amd):
        curve = mrc([(64 * 1024, 0.9), (1 << 20, 0.6), (8 << 20, 0.2)])
        kwargs = dict(
            cycles_alone=5e5,
            dram_lines=20_000,
            llc_insert_lines=20_000,
            mrc=curve,
            mr_full_llc=0.2,
        )
        exposed = profile(exposure=1.0, **kwargs)
        covered = profile(exposure=0.1, **kwargs)
        polluter = profile(cycles_alone=2e5, dram_lines=50_000)
        t_exposed = solve_mix(amd, [exposed, polluter])[0].cycles
        t_covered = solve_mix(amd, [covered, polluter])[0].cycles
        assert t_covered < t_exposed

    def test_validation(self):
        with pytest.raises(SimulationError):
            profile(exposure=1.5)
        with pytest.raises(SimulationError):
            profile(throttleable_lines=-1)


class TestSharedThrottleCurve:
    """One canonical back-off curve serves every consumer (no copies)."""

    def test_single_definition(self):
        from repro.hwpref.base import throttle_factor as base_curve
        from repro.multicore.coordinator import throttle_factor as coord_curve

        assert _throttle_factor is base_curve
        assert coord_curve is base_curve

    def test_prefetcher_model_parity(self):
        # A prefetcher's internal factor must equal the analytic model's
        # at every utilisation, default tuning applied.
        from repro.hwpref.stride_pref import PCStridePrefetcher

        rho = {"value": 0.0}
        pf = PCStridePrefetcher(utilisation=lambda: rho["value"])
        for value in (0.0, 0.5, 0.7, 0.75, 0.85, 0.95, 1.0):
            rho["value"] = value
            assert pf._throttle_factor() == pytest.approx(_throttle_factor(value))


class TestPartitionFixedPoint:
    """Insertion rates must track each app's *current* share (not the
    equal split), so asymmetric mixes converge away from it."""

    @staticmethod
    def _mix():
        hungry = profile(
            name="hungry",
            dram_lines=20_000,
            llc_insert_lines=20_000,
            mrc=mrc(
                [
                    (64 * 1024, 0.9),
                    (1 << 20, 0.6),
                    (2 << 20, 0.45),
                    (4 << 20, 0.3),
                    (8 << 20, 0.1),
                ]
            ),
            mr_full_llc=0.1,
        )
        flat = profile(name="flat", dram_lines=20_000, llc_insert_lines=20_000)
        return [hungry, flat]

    def test_shares_evolve_past_first_iteration(self, amd):
        # Pre-fix, rates were always evaluated at llc/n, so the shares
        # were identical for every iteration count.
        apps = self._mix()
        first = solve_mix(amd, apps, iterations=1)
        converged = solve_mix(amd, apps, iterations=30)
        assert converged[0].llc_share_bytes < 0.75 * first[0].llc_share_bytes
        assert converged[1].llc_share_bytes > 1.5 * first[1].llc_share_bytes

    def test_shares_move_monotonically_from_equal_split(self, amd):
        apps = self._mix()
        hungry_shares = [
            solve_mix(amd, apps, iterations=k)[0].llc_share_bytes
            for k in (1, 2, 3, 5, 10)
        ]
        assert all(a > b for a, b in zip(hungry_shares, hungry_shares[1:]))

    def test_shares_still_sum_to_capacity(self, amd):
        total = sum(
            c.llc_share_bytes for c in solve_mix(amd, self._mix(), iterations=30)
        )
        assert total == pytest.approx(amd.llc.size_bytes)
