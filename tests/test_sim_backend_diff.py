"""Differential tests: fast simulation backend vs the dict-based oracle.

The fast backend's contract is *bit-identity*: same miss vectors, same
PCStats, same eviction victims, same RunStats (including float cycle
counts) as the reference simulator, on any trace.  These tests enforce
the contract over seeded random traces across associativities and both
prefetch-handling modes, plus the backend-selection plumbing.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy, FunctionalCacheSim
from repro.cachesim.backend import (
    BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.cachesim.fastlru import FastLRUCache
from repro.cachesim.lru import FLAG_DIRTY, FLAG_NTA, LRUCache
from repro.config import CacheConfig, MachineConfig
from repro.errors import ConfigError
from repro.hwpref import GHBPrefetcher, PCStridePrefetcher
from repro.trace import MemOp, MemoryTrace


def random_trace(rng, n, footprint_lines, prefetch_share=0.0, all_ops=False):
    """Seeded mixed trace: streaming + hot-set + random addresses."""
    stream = (np.arange(n) % footprint_lines) * 64
    hot = rng.integers(0, max(2, footprint_lines // 16), n) * 64
    rand = rng.integers(0, footprint_lines * 4, n) * 64
    pick = rng.random(n)
    addr = np.where(pick < 0.4, stream, np.where(pick < 0.8, hot, rand))
    pc = rng.integers(0, 32, n)
    op = np.zeros(n, dtype=np.int64)
    if all_ops:
        roll = rng.random(n)
        op[roll < 0.25] = int(MemOp.STORE)
        op[(roll >= 0.25) & (roll < 0.30)] = int(MemOp.PREFETCH)
        op[(roll >= 0.30) & (roll < 0.34)] = int(MemOp.PREFETCH_NTA)
        op[(roll >= 0.34) & (roll < 0.38)] = int(MemOp.STORE_NT)
    elif prefetch_share:
        op[rng.random(n) < prefetch_share] = int(MemOp.PREFETCH)
    return MemoryTrace(pc, addr, op)


def run_functional(backend, config, trace, honor):
    sim = FunctionalCacheSim(config, backend=backend)
    stats = sim.run(trace, honor_prefetches=honor, collect_victims=True)
    return stats, sim.last_miss, sim.last_victims


class TestFunctionalDifferential:
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    @pytest.mark.parametrize("honor", [False, True])
    def test_miss_vectors_pcstats_and_victims_identical(self, rng, ways, honor):
        config = CacheConfig("T", 64 * 64 * ways, ways=ways, line_bytes=64)
        for trial in range(3):
            trace = random_trace(rng, 3000 + trial * 997, 256, prefetch_share=0.2)
            ref, ref_miss, ref_vic = run_functional("reference", config, trace, honor)
            fast, fast_miss, fast_vic = run_functional("fast", config, trace, honor)
            assert np.array_equal(ref_miss, fast_miss)
            assert np.array_equal(ref_vic, fast_vic)
            assert ref.accesses == fast.accesses
            assert ref.misses == fast.misses

    def test_single_set_scalar_tail(self, rng):
        # Every access lands in one set: the wavefront kernel has no
        # cross-set parallelism and must fall back to the scalar tail.
        config = CacheConfig("T", 4 * 64, ways=4, line_bytes=64)
        trace = MemoryTrace(
            np.zeros(2000, np.int64),
            rng.integers(0, 12, 2000) * 64 * config.num_sets,
            np.zeros(2000, np.int64),
        )
        ref, ref_miss, ref_vic = run_functional("reference", config, trace, False)
        fast, fast_miss, fast_vic = run_functional("fast", config, trace, False)
        assert np.array_equal(ref_miss, fast_miss)
        assert np.array_equal(ref_vic, fast_vic)

    def test_many_set_wavefront(self, rng):
        # Uniform pressure over 1024 sets keeps the wavefront rounds
        # wide from start to finish.
        config = CacheConfig("T", 1024 * 4 * 64, ways=4, line_bytes=64)
        trace = random_trace(rng, 20_000, 8192)
        ref, ref_miss, ref_vic = run_functional("reference", config, trace, False)
        fast, fast_miss, fast_vic = run_functional("fast", config, trace, False)
        assert np.array_equal(ref_miss, fast_miss)
        assert np.array_equal(ref_vic, fast_vic)
        assert ref.total_misses() == fast.total_misses()

    def test_state_carries_across_batches(self, rng):
        config = CacheConfig("T", 32 * 64, ways=2, line_bytes=64)
        ref_sim = FunctionalCacheSim(config, backend="reference")
        fast_sim = FunctionalCacheSim(config, backend="fast")
        for _ in range(4):
            trace = random_trace(rng, 500, 64)
            ref_sim.run(trace)
            fast_sim.run(trace)
            assert np.array_equal(ref_sim.last_miss, fast_sim.last_miss)
        assert sorted(ref_sim.cache.resident_lines()) == sorted(
            fast_sim.cache.resident_lines()
        )


class TestScalarAPIParity:
    def test_random_op_sequence_matches_reference(self, rng):
        config = CacheConfig("T", 16 * 64, ways=4, line_bytes=64)
        ref = LRUCache(config)
        fast = FastLRUCache(config)
        for _ in range(3000):
            line = int(rng.integers(0, 64))
            op = int(rng.integers(0, 6))
            if op == 0:
                assert ref.lookup(line, FLAG_DIRTY) == fast.lookup(line, FLAG_DIRTY)
            elif op == 1:
                assert ref.install(line, FLAG_NTA) == fast.install(line, FLAG_NTA)
            elif op == 2:
                assert ref.contains(line) == fast.contains(line)
            elif op == 3:
                assert ref.peek_flags(line) == fast.peek_flags(line)
            elif op == 4:
                assert ref.touch_flags(line, FLAG_DIRTY) == fast.touch_flags(
                    line, FLAG_DIRTY
                )
            else:
                assert ref.invalidate(line) == fast.invalidate(line)
        assert len(ref) == len(fast)
        assert list(ref.resident_lines()) == list(fast.resident_lines())
        fast.check_invariants()


class TestHierarchyDifferential:
    def _compare(self, machine, trace, prefetcher_factory=None, **run_kw):
        results = {}
        for backend in BACKENDS:
            m = replace(machine, sim_backend=backend)
            pf = prefetcher_factory() if prefetcher_factory else None
            hier = CacheHierarchy(m, prefetcher=pf)
            stats = hier.run(trace, **run_kw)
            results[backend] = (stats, hier)
        ref, ref_h = results["reference"]
        fast, fast_h = results["fast"]
        assert ref.cycles == fast.cycles  # bit-identical, not approx
        assert ref.instructions == fast.instructions
        assert (ref.l1, ref.l2, ref.llc) == (fast.l1, fast.l2, fast.llc)
        assert ref.pc_l1.accesses == fast.pc_l1.accesses
        assert ref.pc_l1.misses == fast.pc_l1.misses
        for name in (
            "sw_prefetches", "sw_useful", "sw_useless", "sw_late",
            "hw_prefetches", "hw_useful", "hw_useless",
            "dram_fills", "nta_fills", "dram_writebacks", "nt_store_writes",
        ):
            assert getattr(ref, name) == getattr(fast, name), name
        assert ref_h.now == fast_h.now
        assert ref_h._inflight == fast_h._inflight
        for lvl in ("l1", "l2", "llc"):
            assert sorted(getattr(ref_h, lvl).resident_lines()) == sorted(
                getattr(fast_h, lvl).resident_lines()
            )

    def test_all_event_kinds(self, tiny_machine, rng):
        trace = random_trace(rng, 6000, 512, all_ops=True)
        self._compare(tiny_machine, trace, work_per_memop=3.0, mlp=2.0)

    def test_with_hardware_prefetchers(self, tiny_machine, rng):
        trace = random_trace(rng, 4000, 512, all_ops=True)
        for factory in (PCStridePrefetcher, GHBPrefetcher):
            self._compare(tiny_machine, trace, prefetcher_factory=factory)

    def test_full_machine_model(self, amd, rng):
        trace = random_trace(rng, 8000, 4096, all_ops=True)
        self._compare(amd, trace, work_per_memop=8.0, mlp=4.0)


class TestBackendSelection:
    def test_default_is_reference(self):
        assert get_default_backend() == "reference"
        assert resolve_backend(None) == "reference"

    def test_explicit_wins_over_config_and_default(self):
        config = CacheConfig("T", 1024, ways=2, backend="reference")
        sim = FunctionalCacheSim(config, backend="fast")
        assert sim.backend == "fast"
        assert isinstance(sim.cache, FastLRUCache)

    def test_config_field_wins_over_default(self):
        config = CacheConfig("T", 1024, ways=2, backend="fast")
        assert FunctionalCacheSim(config).backend == "fast"

    def test_process_default_applies(self):
        previous = set_default_backend("fast")
        try:
            assert FunctionalCacheSim(CacheConfig("T", 1024, ways=2)).backend == "fast"
        finally:
            set_default_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            resolve_backend("turbo")
        with pytest.raises(ConfigError):
            set_default_backend("turbo")
        with pytest.raises(ConfigError):
            CacheConfig("T", 1024, ways=2, backend="turbo")
        with pytest.raises(ConfigError):
            FunctionalCacheSim(CacheConfig("T", 1024, ways=2), backend="turbo")

    def test_machine_config_validates_backend(self, tiny_machine):
        with pytest.raises(ConfigError):
            replace(tiny_machine, sim_backend="turbo")
        assert replace(tiny_machine, sim_backend="fast").sim_backend == "fast"

    def test_api_configure_installs_default(self):
        from repro import api

        previous = get_default_backend()
        try:
            api.configure(sim_backend="fast")
            assert get_default_backend() == "fast"
        finally:
            set_default_backend(previous)
            api.reset_default_engine()
