"""Differential tests: fast simulation backend vs the dict-based oracle.

The fast backend's contract is *bit-identity*: same miss vectors, same
PCStats, same eviction victims, same RunStats (including float cycle
counts) as the reference simulator, on any trace.  These tests enforce
the contract over seeded random traces across associativities and both
prefetch-handling modes, plus the backend-selection plumbing.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cachesim import BandwidthModel, CacheHierarchy, FunctionalCacheSim
from repro.cachesim.fastlru import FastLRUCache
from repro.cachesim.lru import FLAG_DIRTY, FLAG_NTA, LRUCache
from repro.cachesim.options import (
    BACKENDS,
    SimOptions,
    get_default_options,
    resolve_options,
    set_default_options,
    validate_backend,
)
from repro.config import CacheConfig, MachineConfig
from repro.errors import ConfigError
from repro.hwpref import (
    AdjacentLinePrefetcher,
    GHBPrefetcher,
    NullPrefetcher,
    PCStridePrefetcher,
    StreamerPrefetcher,
    amd_hw_prefetcher,
    intel_hw_prefetcher,
)
from repro.trace import MemOp, MemoryTrace

PREFETCHER_FACTORIES = {
    "null": NullPrefetcher,
    "adjacent": AdjacentLinePrefetcher,
    "stride": PCStridePrefetcher,
    "ghb": GHBPrefetcher,
    "streamer": StreamerPrefetcher,
    "amd": amd_hw_prefetcher,
    "intel": intel_hw_prefetcher,
}


def random_trace(rng, n, footprint_lines, prefetch_share=0.0, all_ops=False):
    """Seeded mixed trace: streaming + hot-set + random addresses."""
    stream = (np.arange(n) % footprint_lines) * 64
    hot = rng.integers(0, max(2, footprint_lines // 16), n) * 64
    rand = rng.integers(0, footprint_lines * 4, n) * 64
    pick = rng.random(n)
    addr = np.where(pick < 0.4, stream, np.where(pick < 0.8, hot, rand))
    pc = rng.integers(0, 32, n)
    op = np.zeros(n, dtype=np.int64)
    if all_ops:
        roll = rng.random(n)
        op[roll < 0.25] = int(MemOp.STORE)
        op[(roll >= 0.25) & (roll < 0.30)] = int(MemOp.PREFETCH)
        op[(roll >= 0.30) & (roll < 0.34)] = int(MemOp.PREFETCH_NTA)
        op[(roll >= 0.34) & (roll < 0.38)] = int(MemOp.STORE_NT)
    elif prefetch_share:
        op[rng.random(n) < prefetch_share] = int(MemOp.PREFETCH)
    return MemoryTrace(pc, addr, op)


def run_functional(backend, config, trace, honor):
    sim = FunctionalCacheSim(config, backend=backend)
    stats = sim.run(trace, honor_prefetches=honor, collect_victims=True)
    return stats, sim.last_miss, sim.last_victims


class TestFunctionalDifferential:
    @pytest.mark.parametrize("ways", [1, 2, 4, 8])
    @pytest.mark.parametrize("honor", [False, True])
    def test_miss_vectors_pcstats_and_victims_identical(self, rng, ways, honor):
        config = CacheConfig("T", 64 * 64 * ways, ways=ways, line_bytes=64)
        for trial in range(3):
            trace = random_trace(rng, 3000 + trial * 997, 256, prefetch_share=0.2)
            ref, ref_miss, ref_vic = run_functional("reference", config, trace, honor)
            fast, fast_miss, fast_vic = run_functional("fast", config, trace, honor)
            assert np.array_equal(ref_miss, fast_miss)
            assert np.array_equal(ref_vic, fast_vic)
            assert ref.accesses == fast.accesses
            assert ref.misses == fast.misses

    def test_single_set_scalar_tail(self, rng):
        # Every access lands in one set: the wavefront kernel has no
        # cross-set parallelism and must fall back to the scalar tail.
        config = CacheConfig("T", 4 * 64, ways=4, line_bytes=64)
        trace = MemoryTrace(
            np.zeros(2000, np.int64),
            rng.integers(0, 12, 2000) * 64 * config.num_sets,
            np.zeros(2000, np.int64),
        )
        ref, ref_miss, ref_vic = run_functional("reference", config, trace, False)
        fast, fast_miss, fast_vic = run_functional("fast", config, trace, False)
        assert np.array_equal(ref_miss, fast_miss)
        assert np.array_equal(ref_vic, fast_vic)

    def test_many_set_wavefront(self, rng):
        # Uniform pressure over 1024 sets keeps the wavefront rounds
        # wide from start to finish.
        config = CacheConfig("T", 1024 * 4 * 64, ways=4, line_bytes=64)
        trace = random_trace(rng, 20_000, 8192)
        ref, ref_miss, ref_vic = run_functional("reference", config, trace, False)
        fast, fast_miss, fast_vic = run_functional("fast", config, trace, False)
        assert np.array_equal(ref_miss, fast_miss)
        assert np.array_equal(ref_vic, fast_vic)
        assert ref.total_misses() == fast.total_misses()

    def test_state_carries_across_batches(self, rng):
        config = CacheConfig("T", 32 * 64, ways=2, line_bytes=64)
        ref_sim = FunctionalCacheSim(config, backend="reference")
        fast_sim = FunctionalCacheSim(config, backend="fast")
        for _ in range(4):
            trace = random_trace(rng, 500, 64)
            ref_sim.run(trace)
            fast_sim.run(trace)
            assert np.array_equal(ref_sim.last_miss, fast_sim.last_miss)
        assert sorted(ref_sim.cache.resident_lines()) == sorted(
            fast_sim.cache.resident_lines()
        )


class TestScalarAPIParity:
    def test_random_op_sequence_matches_reference(self, rng):
        config = CacheConfig("T", 16 * 64, ways=4, line_bytes=64)
        ref = LRUCache(config)
        fast = FastLRUCache(config)
        for _ in range(3000):
            line = int(rng.integers(0, 64))
            op = int(rng.integers(0, 6))
            if op == 0:
                assert ref.lookup(line, FLAG_DIRTY) == fast.lookup(line, FLAG_DIRTY)
            elif op == 1:
                assert ref.install(line, FLAG_NTA) == fast.install(line, FLAG_NTA)
            elif op == 2:
                assert ref.contains(line) == fast.contains(line)
            elif op == 3:
                assert ref.peek_flags(line) == fast.peek_flags(line)
            elif op == 4:
                assert ref.touch_flags(line, FLAG_DIRTY) == fast.touch_flags(
                    line, FLAG_DIRTY
                )
            else:
                assert ref.invalidate(line) == fast.invalidate(line)
        assert len(ref) == len(fast)
        assert list(ref.resident_lines()) == list(fast.resident_lines())
        fast.check_invariants()


class TestHierarchyDifferential:
    def _compare(self, machine, trace, prefetcher_factory=None, **run_kw):
        results = {}
        for backend in BACKENDS:
            m = replace(machine, sim_backend=backend)
            pf = prefetcher_factory() if prefetcher_factory else None
            hier = CacheHierarchy(m, prefetcher=pf)
            stats = hier.run(trace, **run_kw)
            results[backend] = (stats, hier)
        ref, ref_h = results["reference"]
        fast, fast_h = results["fast"]
        assert ref.cycles == fast.cycles  # bit-identical, not approx
        assert ref.instructions == fast.instructions
        assert (ref.l1, ref.l2, ref.llc) == (fast.l1, fast.l2, fast.llc)
        assert ref.pc_l1.accesses == fast.pc_l1.accesses
        assert ref.pc_l1.misses == fast.pc_l1.misses
        for name in (
            "sw_prefetches", "sw_useful", "sw_useless", "sw_late",
            "hw_prefetches", "hw_useful", "hw_useless",
            "dram_fills", "nta_fills", "dram_writebacks", "nt_store_writes",
        ):
            assert getattr(ref, name) == getattr(fast, name), name
        assert ref_h.now == fast_h.now
        assert ref_h._inflight == fast_h._inflight
        for lvl in ("l1", "l2", "llc"):
            assert sorted(getattr(ref_h, lvl).resident_lines()) == sorted(
                getattr(fast_h, lvl).resident_lines()
            )

    def test_all_event_kinds(self, tiny_machine, rng):
        trace = random_trace(rng, 6000, 512, all_ops=True)
        self._compare(tiny_machine, trace, work_per_memop=3.0, mlp=2.0)

    def test_with_hardware_prefetchers(self, tiny_machine, rng):
        trace = random_trace(rng, 4000, 512, all_ops=True)
        for factory in (PCStridePrefetcher, GHBPrefetcher):
            self._compare(tiny_machine, trace, prefetcher_factory=factory)

    def test_full_machine_model(self, amd, rng):
        trace = random_trace(rng, 8000, 4096, all_ops=True)
        self._compare(amd, trace, work_per_memop=8.0, mlp=4.0)


def pc_correlated_trace(rng, n, hot_lines=64, n_streams=5, nta_share=0.0, sw_share=0.0):
    """Demand-heavy trace with PC-correlated streams (prefetchers fire)."""
    hot = rng.integers(0, hot_lines, n) * 64
    sid = rng.integers(0, n_streams, n)
    prog = np.zeros(n, dtype=np.int64)
    for s in range(n_streams):
        m = sid == s
        prog[m] = np.arange(m.sum())
    stream = (1 << 22) + sid * (1 << 18) + prog * 8 * (1 + (sid % 4))
    pick = rng.random(n)
    addr = np.where(pick < 0.6, hot, stream)
    pc = np.where(pick < 0.6, 900 + (hot // 64) % 7, 100 + sid)
    op = np.where(rng.random(n) < 0.3, int(MemOp.STORE), int(MemOp.LOAD))
    roll = rng.random(n)
    op = np.where(roll < sw_share, int(MemOp.PREFETCH), op)
    op = np.where(
        (roll >= sw_share) & (roll < sw_share + nta_share),
        int(MemOp.PREFETCH_NTA),
        op,
    )
    return MemoryTrace(pc.astype(np.int64), addr.astype(np.int64), op.astype(np.int64))


RUNSTAT_FIELDS = (
    "sw_prefetches", "sw_useful", "sw_useless", "sw_late",
    "hw_prefetches", "hw_useful", "hw_useless",
    "dram_fills", "nta_fills", "dram_writebacks", "nt_store_writes",
)


def compare_hierarchies(machine, traces, factory, bandwidth=False, **run_kw):
    """Run the same traces under both backends; assert bit-identity.

    Returns the fast hierarchy so callers can assert on the path taken.
    """
    hiers = {}
    for backend in BACKENDS:
        m = replace(machine, sim_backend=backend)
        bw = BandwidthModel(m.bytes_per_cycle()) if bandwidth else None
        hiers[backend] = CacheHierarchy(m, prefetcher=factory(), bandwidth=bw)
    for trace in traces:
        stats = {b: h.run(trace, **run_kw) for b, h in hiers.items()}
        ref, fast = stats["reference"], stats["fast"]
        assert ref.cycles == fast.cycles  # bit-identical, not approx
        assert (ref.l1, ref.l2, ref.llc) == (fast.l1, fast.l2, fast.llc)
        for name in RUNSTAT_FIELDS:
            assert getattr(ref, name) == getattr(fast, name), name
        assert ref.pc_l1.accesses == fast.pc_l1.accesses
        assert ref.pc_l1.misses == fast.pc_l1.misses
    ref_h, fast_h = hiers["reference"], hiers["fast"]
    assert ref_h.now == fast_h.now
    assert ref_h._inflight == fast_h._inflight
    for lvl in ("l1", "l2", "llc"):
        assert sorted(getattr(ref_h, lvl).resident_lines()) == sorted(
            getattr(fast_h, lvl).resident_lines()
        )
    return fast_h


class TestHierarchyBatchParity:
    """The whole-hierarchy batched fast path vs the scalar reference."""

    @pytest.mark.parametrize("model", sorted(PREFETCHER_FACTORIES))
    def test_every_prefetcher_model_batch_parity(self, amd, rng, model):
        traces = [pc_correlated_trace(rng, 5000) for _ in range(2)]
        fast_h = compare_hierarchies(
            amd, traces, PREFETCHER_FACTORIES[model], work_per_memop=2.0, mlp=2.0
        )
        # pure-demand traces must engage the batched pipeline
        assert fast_h.last_run_path == "batch"

    def test_nta_bypass_parity(self, amd, rng):
        traces = [pc_correlated_trace(rng, 5000, nta_share=0.05, sw_share=0.05)]
        compare_hierarchies(
            amd, traces, GHBPrefetcher, work_per_memop=2.0, mlp=2.0
        )

    @pytest.mark.parametrize("bandwidth", [False, True])
    def test_bandwidth_model_on_off(self, amd, rng, bandwidth):
        traces = [pc_correlated_trace(rng, 5000)]
        compare_hierarchies(
            amd, traces, StreamerPrefetcher, bandwidth=bandwidth,
            work_per_memop=2.0, mlp=2.0,
        )

    def test_throttled_prefetcher_uses_scalar_path(self, amd):
        # A utilisation-throttled prefetcher is not batch-safe: the fast
        # backend must fall back to per-event observation, identically.
        trace = pc_correlated_trace(np.random.default_rng(7), 4000)
        results = {}
        for backend in BACKENDS:
            m = replace(amd, sim_backend=backend)
            bw = BandwidthModel(m.bytes_per_cycle())
            pf = amd_hw_prefetcher(m.line_bytes, bw.utilisation)
            h = CacheHierarchy(m, prefetcher=pf, bandwidth=bw)
            results[backend] = (h.run(trace, work_per_memop=2.0, mlp=2.0), h)
        ref, fast = results["reference"][0], results["fast"][0]
        assert ref.cycles == fast.cycles
        assert ref.hw_prefetches == fast.hw_prefetches
        assert results["fast"][1].last_run_path != "batch"


class TestObserveBatchParity:
    """observe_batch must equal an observe() loop, per model, with state."""

    @pytest.mark.parametrize("model", sorted(PREFETCHER_FACTORIES))
    def test_batch_equals_scalar_loop(self, rng, model):
        scalar_pf = PREFETCHER_FACTORIES[model]()
        batch_pf = PREFETCHER_FACTORIES[model]()
        for _ in range(2):  # second batch checks carried training state
            trace = pc_correlated_trace(rng, 2000)
            lines = trace.addr // 64
            hits = rng.random(len(lines)) < 0.5
            ev, tgt, fill = [], [], []
            for i in range(len(lines)):
                for req in scalar_pf.observe(
                    int(trace.pc[i]), int(trace.addr[i]), int(lines[i]), bool(hits[i])
                ):
                    ev.append(i)
                    tgt.append(req.line)
                    fill.append(req.fill_l2)
            bev, btgt, bfill = batch_pf.observe_batch(
                trace.pc, trace.addr, lines, hits
            )
            assert np.array_equal(np.asarray(ev, dtype=np.int64), bev)
            assert np.array_equal(np.asarray(tgt, dtype=np.int64), btgt)
            assert np.array_equal(np.asarray(fill, dtype=bool), bfill)

    def test_ghb_fifo_eviction_fallback(self, rng):
        # A batch that would overflow the PC table must take the flat
        # fallback and still match the scalar loop exactly, including
        # FIFO eviction order.
        scalar_pf = GHBPrefetcher(table_size=8)
        batch_pf = GHBPrefetcher(table_size=8)
        trace = pc_correlated_trace(rng, 1500, n_streams=11)
        lines = trace.addr // 64
        hits = np.zeros(len(lines), dtype=bool)
        ev, tgt = [], []
        for i in range(len(lines)):
            for req in scalar_pf.observe(
                int(trace.pc[i]), int(trace.addr[i]), int(lines[i]), False
            ):
                ev.append(i)
                tgt.append(req.line)
        bev, btgt, _ = batch_pf.observe_batch(trace.pc, trace.addr, lines, hits)
        assert np.array_equal(np.asarray(ev, dtype=np.int64), bev)
        assert np.array_equal(np.asarray(tgt, dtype=np.int64), btgt)
        assert list(scalar_pf._table) == list(batch_pf._table)
        for pc in scalar_pf._table:
            assert list(scalar_pf._table[pc]) == list(batch_pf._table[pc])

    def test_ghb_vectorised_state_matches(self, rng):
        scalar_pf = GHBPrefetcher()
        batch_pf = GHBPrefetcher()
        trace = pc_correlated_trace(rng, 2000)
        lines = trace.addr // 64
        for i in range(len(lines)):
            scalar_pf.observe(int(trace.pc[i]), int(trace.addr[i]), int(lines[i]), False)
        batch_pf.observe_batch(
            trace.pc, trace.addr, lines, np.zeros(len(lines), dtype=bool)
        )
        assert list(scalar_pf._table) == list(batch_pf._table)
        for pc in scalar_pf._table:
            assert list(scalar_pf._table[pc]) == list(batch_pf._table[pc])


class TestDemand2WayKernel:
    """The round-free 2-way demand kernel vs chunked replay of itself.

    Chunks of <= 2 ops never dispatch to the kernel (it requires n > 2),
    so a second cache fed the same stream two ops at a time replays the
    exact per-op semantics through the generic path — an in-family
    oracle independent of the run decomposition.
    """

    def test_kernel_matches_chunked_replay(self, rng):
        from repro.cachesim.fastlru import OP_DEMAND

        config = CacheConfig("T", 64 * 2 * 64, ways=2, line_bytes=64)
        for trial in range(6):
            kern = FastLRUCache(config)
            oracle = FastLRUCache(config)
            n = 500 + trial * 331
            lines = rng.integers(0, 48, n) * (1 + rng.integers(0, 4, n))
            flags = rng.integers(0, 4, n) * FLAG_DIRTY
            kinds = np.zeros(n, dtype=np.int64)
            kh, kp, kvi, kvl, kvf = kern.ops_batch(lines, kinds, flags)
            oh = np.empty(0, dtype=bool)
            op_ = np.empty(0, dtype=np.int64)
            ovi, ovl, ovf = [], [], []
            for s in range(0, n, 2):
                h, p, vi, vl, vf = oracle.ops_batch(
                    lines[s : s + 2], kinds[s : s + 2], flags[s : s + 2]
                )
                oh = np.concatenate((oh, h))
                op_ = np.concatenate((op_, p))
                ovi.extend((vi + s).tolist())
                ovl.extend(vl.tolist())
                ovf.extend(vf.tolist())
            assert np.array_equal(kh, oh)
            assert np.array_equal(kp, op_)
            assert kvi.tolist() == ovi
            assert kvl.tolist() == ovl
            assert kvf.tolist() == ovf
            assert sorted(kern.resident_lines()) == sorted(oracle.resident_lines())
            for line in kern.resident_lines():
                assert kern.peek_flags(line) == oracle.peek_flags(line)
            kern.check_invariants()


class TestSimOptionsPrecedence:
    def test_explicit_beats_spec_and_default(self):
        previous = set_default_options(SimOptions(backend="reference"))
        try:
            opts = resolve_options(SimOptions(backend="fast"), "reference")
            assert opts.backend == "fast"
            assert resolve_options("fast", "reference").backend == "fast"
        finally:
            set_default_options(previous)

    def test_spec_beats_default(self):
        previous = set_default_options(SimOptions(backend="reference"))
        try:
            assert resolve_options(None, "fast").backend == "fast"
        finally:
            set_default_options(previous)

    def test_default_applies_last(self):
        previous = set_default_options(SimOptions(backend="fast"))
        try:
            assert resolve_options(None, None).backend == "fast"
        finally:
            set_default_options(previous)

    def test_options_carry_batch_hierarchy_flag(self):
        previous = set_default_options(
            SimOptions(backend="fast", batch_hierarchy=False)
        )
        try:
            assert resolve_options(None, None).batch_hierarchy is False
        finally:
            set_default_options(previous)

    def test_frozen_and_validated(self):
        opts = SimOptions(backend="fast")
        with pytest.raises(Exception):
            opts.backend = "reference"  # type: ignore[misc]
        with pytest.raises(ConfigError):
            SimOptions(backend="turbo")
        with pytest.raises(ConfigError):
            set_default_options("fast")  # type: ignore[arg-type]

    def test_batch_hierarchy_false_forces_chunked_path(self, amd, rng):
        trace = pc_correlated_trace(rng, 3000)
        m = replace(amd, sim_backend="fast")
        h_off = CacheHierarchy(m, options=SimOptions(batch_hierarchy=False))
        s_off = h_off.run(trace, work_per_memop=2.0, mlp=2.0)
        h_on = CacheHierarchy(m)
        s_on = h_on.run(trace, work_per_memop=2.0, mlp=2.0)
        assert h_off.last_run_path != "batch"
        assert h_on.last_run_path == "batch"
        assert s_off.cycles == s_on.cycles  # path choice never changes results

    def test_api_configure_sim_options(self):
        from repro import api

        previous = get_default_options()
        try:
            api.configure(sim_options=SimOptions(backend="fast"))
            assert get_default_options().backend == "fast"
        finally:
            set_default_options(previous)
            api.reset_default_engine()

    def test_api_sim_backend_kwarg_removed(self):
        from repro import api
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="sim_options="):
            api.configure(sim_backend="fast")
        # Removal is an error, not a silent default change.
        assert get_default_options().backend == "reference"

    def test_legacy_backend_helpers_tombstoned(self):
        from repro import cachesim
        from repro.errors import ExperimentError

        for name in ("get_default_backend", "set_default_backend", "resolve_backend"):
            with pytest.raises(ExperimentError, match="SimOptions"):
                getattr(cachesim, name)
        with pytest.raises(AttributeError):
            cachesim.totally_unknown_name


class TestPathObservability:
    def test_path_counters_and_span_attribute(self, amd, rng):
        from repro import obs

        obs.disable()
        obs.reset_metrics()
        obs.enable()
        try:
            trace = pc_correlated_trace(rng, 3000)
            fast = CacheHierarchy(replace(amd, sim_backend="fast"))
            fast.run(trace, work_per_memop=2.0, mlp=2.0)
            ref = CacheHierarchy(replace(amd, sim_backend="reference"))
            ref.run(trace, work_per_memop=2.0, mlp=2.0)
            assert fast.last_run_path == "batch"
            assert ref.last_run_path == "scalar"
            snap = obs.metrics().snapshot()
            assert snap["sim.hierarchy.path.batch"]["value"] >= 1
            assert snap["sim.hierarchy.path.scalar"]["value"] >= 1
            paths = [
                s["attrs"].get("path")
                for s in obs.drain_spans()
                if s["name"] == "cachesim.run"
            ]
            assert "batch" in paths and "scalar" in paths
        finally:
            obs.disable()
            obs.reset_metrics()


class TestBackendSelection:
    def test_default_is_reference(self):
        assert get_default_options().backend == "reference"
        assert resolve_options(None).backend == "reference"

    def test_explicit_wins_over_config_and_default(self):
        config = CacheConfig("T", 1024, ways=2, backend="reference")
        sim = FunctionalCacheSim(config, backend="fast")
        assert sim.backend == "fast"
        assert isinstance(sim.cache, FastLRUCache)

    def test_config_field_wins_over_default(self):
        config = CacheConfig("T", 1024, ways=2, backend="fast")
        assert FunctionalCacheSim(config).backend == "fast"

    def test_process_default_applies(self):
        previous = set_default_options(SimOptions(backend="fast"))
        try:
            assert FunctionalCacheSim(CacheConfig("T", 1024, ways=2)).backend == "fast"
        finally:
            set_default_options(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            resolve_options("turbo")
        with pytest.raises(ConfigError):
            validate_backend("turbo")
        with pytest.raises(ConfigError):
            CacheConfig("T", 1024, ways=2, backend="turbo")
        with pytest.raises(ConfigError):
            FunctionalCacheSim(CacheConfig("T", 1024, ways=2), backend="turbo")

    def test_machine_config_validates_backend(self, tiny_machine):
        with pytest.raises(ConfigError):
            replace(tiny_machine, sim_backend="turbo")
        assert replace(tiny_machine, sim_backend="fast").sim_backend == "fast"

    def test_api_configure_installs_default(self):
        from repro import api

        previous = get_default_options()
        try:
            api.configure(sim_options=SimOptions(backend="fast"))
            assert get_default_options().backend == "fast"
        finally:
            set_default_options(previous)
            api.reset_default_engine()


class TestCrossCorePrefetcherDiff:
    """hw-xcore helper prefetcher: batch-vs-scalar and backend parity.

    Unlike the models in PREFETCHER_FACTORIES the cross-core prefetcher
    is built *from a program* (it needs the A[B[i]] index directory), so
    it gets its own grid here instead of a zero-arg factory entry.
    """

    @pytest.fixture(params=["pagerank", "hashjoin"])
    def graph(self, request):
        from repro.isa.interpreter import execute_program
        from repro.workloads import build_program, workload_seed

        name = request.param
        program = build_program(name, "train", scale=0.02)
        seed = workload_seed(name, "train")
        return program, execute_program(program, seed=seed).trace

    def test_hierarchy_batch_parity(self, amd, graph):
        from repro.hwpref import cross_core_prefetcher_for

        program, trace = graph
        fast_h = compare_hierarchies(
            amd, [trace], lambda: cross_core_prefetcher_for(program),
            work_per_memop=2.0, mlp=2.0,
        )
        assert fast_h.last_run_path == "batch"

    def test_batch_equals_scalar_loop(self, graph):
        from repro.hwpref import cross_core_prefetcher_for

        program, trace = graph
        scalar_pf = cross_core_prefetcher_for(program)
        batch_pf = cross_core_prefetcher_for(program)
        lines = trace.addr // 64
        hits = np.zeros(len(lines), dtype=bool)
        ev, tgt, fill = [], [], []
        for i in range(len(lines)):
            for req in scalar_pf.observe(
                int(trace.pc[i]), int(trace.addr[i]), int(lines[i]), False
            ):
                ev.append(i)
                tgt.append(req.line)
                fill.append(req.fill_l2)
        bev, btgt, bfill = batch_pf.observe_batch(trace.pc, trace.addr, lines, hits)
        assert len(ev) > 0  # the helper actually fires on graph traces
        assert np.array_equal(np.asarray(ev, dtype=np.int64), bev)
        assert np.array_equal(np.asarray(tgt, dtype=np.int64), btgt)
        assert np.array_equal(np.asarray(fill, dtype=bool), bfill)
        assert not bfill.any()  # every fill is LLC-only (cross-core)

    def test_split_batch_carries_next_pointer(self, graph):
        # Chunked replay must equal one whole-trace batch: the per-PC
        # next-issue pointer has to survive the batch boundary.
        from repro.hwpref import cross_core_prefetcher_for

        program, trace = graph
        whole = cross_core_prefetcher_for(program)
        split = cross_core_prefetcher_for(program)
        lines = trace.addr // 64
        hits = np.zeros(len(lines), dtype=bool)
        wev, wtgt, _ = whole.observe_batch(trace.pc, trace.addr, lines, hits)
        cut = len(lines) // 3
        sev, stgt = [], []
        for sl in (slice(0, cut), slice(cut, None)):
            bev, btgt, _ = split.observe_batch(
                trace.pc[sl], trace.addr[sl], lines[sl], hits[sl]
            )
            sev.append(bev + (sl.start or 0))
            stgt.append(btgt)
        assert np.array_equal(wev, np.concatenate(sev))
        assert np.array_equal(wtgt, np.concatenate(stgt))

    def test_throttled_xcore_falls_back_scalar(self, amd, graph):
        # With a utilisation hook the model is not batch-safe; both
        # backends must still agree through the scalar path.
        from repro.cachesim import BandwidthModel, CacheHierarchy
        from repro.hwpref import cross_core_prefetcher_for

        program, trace = graph
        results = {}
        for backend in BACKENDS:
            m = replace(amd, sim_backend=backend)
            bw = BandwidthModel(m.bytes_per_cycle())
            pf = cross_core_prefetcher_for(program, utilisation=bw.utilisation)
            h = CacheHierarchy(m, prefetcher=pf, bandwidth=bw)
            results[backend] = (h.run(trace, work_per_memop=2.0, mlp=2.0), h)
        ref, fast = results["reference"][0], results["fast"][0]
        assert ref.cycles == fast.cycles
        assert ref.hw_prefetches == fast.hw_prefetches
        assert results["fast"][1].last_run_path != "batch"
