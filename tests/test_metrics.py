"""Tests for the evaluation metrics (paper §VII-C/D formulas)."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics import (
    fair_speedup,
    fraction_at_least,
    per_app_speedups,
    qos_degradation,
    sorted_distribution,
    traffic_increase,
    traffic_reduction_vs,
    value_at_percentile,
    weighted_speedup,
)
from repro.cachesim.stats import RunStats


class TestThroughputMetrics:
    def test_per_app_speedups(self):
        assert per_app_speedups([100, 200], [50, 200]) == [2.0, 1.0]

    def test_weighted_speedup_is_mean(self):
        assert weighted_speedup([100, 100], [50, 100]) == pytest.approx(1.5)

    def test_fair_speedup_harmonic(self):
        # paper formula: N / sum(T_pref / T_base)
        base = [100.0, 100.0]
        opt = [50.0, 200.0]
        expected = 2 / (50 / 100 + 200 / 100)
        assert fair_speedup(base, opt) == pytest.approx(expected)

    def test_fair_below_weighted_for_imbalance(self):
        # FS <= weighted speedup, with equality only for balanced mixes
        base, opt = [100, 100], [40, 120]
        assert fair_speedup(base, opt) < weighted_speedup(base, opt)
        assert fair_speedup([100, 100], [80, 80]) == pytest.approx(
            weighted_speedup([100, 100], [80, 80])
        )

    def test_qos_zero_when_nothing_slows(self):
        assert qos_degradation([100, 100], [90, 100]) == 0.0

    def test_qos_counts_only_slowdowns(self):
        # one app 2x faster, one 20% slower: QoS only sees the slowdown
        q = qos_degradation([100, 100], [50, 125])
        assert q == pytest.approx(100 / 125 - 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            weighted_speedup([], [])

    def test_rejects_nonpositive(self):
        with pytest.raises(ExperimentError):
            weighted_speedup([100], [0])


class TestTrafficMetrics:
    def _stats(self, fills, wbs=0):
        s = RunStats(line_bytes=64)
        s.dram_fills = fills
        s.dram_writebacks = wbs
        s.cycles = 1000.0
        return s

    def test_traffic_increase(self):
        assert traffic_increase(self._stats(100), self._stats(150)) == pytest.approx(0.5)
        assert traffic_increase(self._stats(100), self._stats(80)) == pytest.approx(-0.2)

    def test_writebacks_counted(self):
        assert traffic_increase(self._stats(100), self._stats(100, wbs=50)) == pytest.approx(0.5)

    def test_reduction_vs(self):
        # "44% less traffic than hardware prefetching"
        assert traffic_reduction_vs(self._stats(200), self._stats(112)) == pytest.approx(0.44)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ExperimentError):
            traffic_increase(self._stats(0), self._stats(1))


class TestDistributions:
    def test_sorted_descending(self):
        d = sorted_distribution([1.0, 3.0, 2.0])
        assert d.tolist() == [3.0, 2.0, 1.0]

    def test_sorted_ascending(self):
        d = sorted_distribution([1.0, 3.0, 2.0], descending=False)
        assert d.tolist() == [1.0, 2.0, 3.0]

    def test_value_at_percentile(self):
        values = list(range(101))
        # "in 60% of runs, at least X": descending
        assert value_at_percentile(values, 0.0) == 100
        assert value_at_percentile(values, 100.0) == 0
        assert value_at_percentile(values, 60.0) == 40

    def test_fraction_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sorted_distribution([])
        with pytest.raises(ExperimentError):
            value_at_percentile([1.0], 120.0)
