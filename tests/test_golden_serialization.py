"""Golden round-trip tests for the JSON codecs.

The fixtures under ``tests/fixtures/golden/`` are committed encoder
output (``json.dumps(..., indent=2, sort_keys=True)``).  Each test
decodes the committed document and re-encodes it; the result must match
the committed text *byte for byte*.  Any codec change that alters the
wire format — field renames, float formatting, ordering — fails here
first, forcing a deliberate format-version bump instead of a silent
break of previously saved artefacts.
"""

import json
from pathlib import Path

import pytest

from repro.core.serialization import (
    advisor_request_from_dict,
    advisor_request_to_dict,
    advisor_response_from_dict,
    advisor_response_to_dict,
    coordinator_policy_from_dict,
    coordinator_policy_to_dict,
    plan_from_dict,
    plan_to_dict,
    sampling_from_dict,
    sampling_to_dict,
    stats_from_dict,
    stats_to_dict,
)

GOLDEN = Path(__file__).parent / "fixtures" / "golden"

CODECS = {
    "plan": (plan_from_dict, plan_to_dict),
    # Same codec, indirect-decision fields present (irregular frontier).
    "plan_indirect": (plan_from_dict, plan_to_dict),
    "stats": (stats_from_dict, stats_to_dict),
    "sampling": (sampling_from_dict, sampling_to_dict),
    "advisor_request": (advisor_request_from_dict, advisor_request_to_dict),
    "advisor_response": (advisor_response_from_dict, advisor_response_to_dict),
    "coordinator_policy": (coordinator_policy_from_dict, coordinator_policy_to_dict),
}


def canonical(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(CODECS))
def test_golden_round_trip_is_byte_identical(name):
    decode, encode = CODECS[name]
    committed = (GOLDEN / f"{name}.json").read_text()
    obj = decode(json.loads(committed))
    assert canonical(encode(obj)) == committed


@pytest.mark.parametrize("name", sorted(CODECS))
def test_golden_double_round_trip(name):
    # decode(encode(decode(x))) must be stable too, not just one hop.
    decode, encode = CODECS[name]
    committed = json.loads((GOLDEN / f"{name}.json").read_text())
    once = encode(decode(committed))
    twice = encode(decode(once))
    assert canonical(once) == canonical(twice)


def test_golden_fixtures_declare_formats():
    formats = {
        name: json.loads((GOLDEN / f"{name}.json").read_text())["format"]
        for name in CODECS
    }
    assert formats == {
        "plan": "repro-plan-v1",
        "plan_indirect": "repro-plan-v1",
        "stats": "repro-stats-v1",
        "sampling": "repro-sampling-v1",
        "advisor_request": "repro-advisor-request-v1",
        "advisor_response": "repro-advisor-response-v1",
        "coordinator_policy": "repro-coordinator-policy-v1",
    }
