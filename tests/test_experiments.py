"""Small-scale tests of the experiment drivers (full scale runs in benchmarks/)."""

import numpy as np
import pytest

from repro.api import CONFIGS, ExperimentSpec, plan, profile, run_many
from repro.errors import ExperimentError
from repro.experiments.fig3_mrc import run_fig3
from repro.experiments.fig4_speedup import POLICIES, average_row, render_fig4, run_fig4
from repro.experiments.fig7_mixes import fig7_summary, run_fig7
from repro.experiments.fig8_mix_detail import run_fig8
from repro.experiments.mixes_common import app_profile, evaluate_mix
from repro.experiments.table1_coverage import coverage_for
from repro.experiments.tables import render_series, render_table
from repro.workloads.mixes import Mix

SCALE = 0.08


def run_all(workload, machine, scale, configs=CONFIGS):
    """All-configs sweep keyed by config name (spec-API equivalent of
    the removed run_all_configs helper)."""
    grid = ExperimentSpec.grid((workload,), (machine,), configs, scales=(scale,))
    return {spec.config: stats for spec, stats in run_many(grid).items()}


class TestRunner:
    def test_profile_cached(self):
        a = profile(ExperimentSpec("mcf", "amd-phenom-ii", scale=SCALE))
        b = profile(ExperimentSpec("mcf", "amd-phenom-ii", scale=SCALE))
        assert a is b

    def test_unknown_config(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("mcf", "amd-phenom-ii", "quantum", scale=SCALE)

    def test_all_configs_run(self):
        runs = run_all("soplex", "amd-phenom-ii", SCALE)
        assert set(runs) == set(CONFIGS)
        for stats in runs.values():
            assert stats.cycles > 0

    def test_sw_configs_issue_prefetches(self):
        runs = run_all("libquantum", "amd-phenom-ii", SCALE)
        assert runs["baseline"].sw_prefetches == 0
        assert runs["swnt"].sw_prefetches > 0
        assert runs["hw"].hw_prefetches >= 0

    def test_plan_kinds_differ(self):
        swnt = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "swnt", scale=SCALE))
        sw = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "sw", scale=SCALE))
        assert any(d.nta for d in swnt.decisions)
        assert not any(d.nta for d in sw.decisions)

    def test_profiles_use_ref_input(self):
        # the plan for an alternate input is derived from the ref profile
        plan_alt = plan(
            ExperimentSpec("mcf", "amd-phenom-ii", "swnt", "train", SCALE)
        )
        plan_ref = plan(
            ExperimentSpec("mcf", "amd-phenom-ii", "swnt", "ref", SCALE)
        )
        assert plan_alt.prefetched_pcs == plan_ref.prefetched_pcs


class TestDrivers:
    def test_table1_coverage_bounds(self):
        cov, oh, n_pf = coverage_for("libquantum", "swnt", SCALE)
        assert 0.0 <= cov <= 1.0
        assert n_pf > 0

    def test_fig3_monotone(self):
        result = run_fig3(scale=SCALE)
        assert np.all(np.diff(result.application.ratios) <= 1e-9)

    def test_fig4_subset(self):
        rows = run_fig4("amd-phenom-ii", benchmarks=("libquantum", "omnetpp"), scale=SCALE)
        assert len(rows) == 2
        avg = average_row(rows)
        assert set(avg) == set(POLICIES)
        text = render_fig4(rows)
        assert "libquantum" in text and "average" in text

    def test_fig7_small(self):
        result = run_fig7("intel-i7-2600k", n_mixes=4, scale=SCALE)
        summary = fig7_summary(result)
        assert "sw_avg_speedup" in summary
        assert len(result.speedup["swnt"]) == 4

    def test_evaluate_mix_structure(self):
        mix = Mix(0, ("mcf", "gcc"), ("ref", "ref"))
        outcome = evaluate_mix(mix, "amd-phenom-ii", "baseline", SCALE)
        assert len(outcome.cycles) == 2
        assert outcome.dram_lines > 0

    def test_app_profile_fields(self):
        prof = app_profile("lbm", "amd-phenom-ii", "swnt", "ref", SCALE)
        assert prof.cycles_alone > 0
        assert prof.llc_insert_lines <= prof.dram_lines

    def test_fig8_direct_sim(self):
        mix = Mix(-1, ("mcf", "libquantum"), ("ref", "ref"))
        result = run_fig8("intel-i7-2600k", mix=mix, scale=SCALE)
        assert len(result.speedups["swnt"]) == 2
        assert result.bandwidth["hw"] > 0


class TestCombinedAndBars:
    def test_hwsw_config_runs(self):
        runs = run_all("cigar", "amd-phenom-ii", SCALE, configs=("baseline", "hwsw"))
        stats = runs["hwsw"]
        # both engines active: software prefetches executed AND hardware
        # prefetches issued
        assert stats.sw_prefetches > 0
        assert stats.hw_prefetches > 0

    def test_combined_rows(self):
        from repro.experiments.combined_prefetching import run_combined

        rows = run_combined("amd-phenom-ii", benchmarks=("cigar",), scale=SCALE)
        assert rows[0].benchmark == "cigar"
        assert isinstance(rows[0].combination_hurts, bool)

    def test_fair_speedup_and_qos_cells(self):
        from repro.experiments.fig7_mixes import run_fig7
        from repro.experiments.fig10_fair_speedup import fair_speedup_from
        from repro.experiments.fig11_qos import qos_from

        result = run_fig7("amd-phenom-ii", n_mixes=3, scale=SCALE)
        fs = fair_speedup_from(result, "orig")
        qos = qos_from(result, "orig")
        assert fs.sw_fs > 0 and fs.hw_fs > 0
        assert qos.sw_qos <= 0 and qos.hw_qos <= 0


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(("a", "bb"), [("1", "2"), ("333", "4")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(set(len(l) for l in lines[2:])) == 1

    def test_render_series_percentiles(self):
        text = render_series({"x": [0.3, 0.2, 0.1]}, points=3, fmt="{:.1f}")
        assert "0.3" in text and "0.1" in text
