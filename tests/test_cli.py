"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(
            ["optimize", "mcf", "--machine", "intel-i7-2600k", "--scale", "0.2"]
        )
        assert args.workload == "mcf"
        assert args.machine == "intel-i7-2600k"
        assert args.scale == 0.2

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "mcf", "--machine", "sparc"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out
        assert "cg" in out  # parallel section

    def test_optimize_small(self, capsys):
        assert main(["optimize", "libquantum", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "prefetches inserted" in out

    def test_optimize_emit_asm(self, capsys):
        assert main(["optimize", "libquantum", "--scale", "0.05", "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert ".program libquantum" in out
        assert "prefetch" in out

    def test_simulate_small(self, capsys):
        code = main(
            ["simulate", "omnetpp", "--scale", "0.05", "--configs", "swnt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "swnt" in out

    def test_mrc_small(self, capsys):
        assert main(["mrc", "mcf", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "miss-ratio curves" in out

    def test_unknown_workload_is_clean_error(self, capsys):
        assert main(["optimize", "notabench", "--scale", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Miss Ratio Modeling" in out


    def test_characterize_small(self, capsys):
        assert main(["characterize", "cigar", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out and "per-instruction" in out
