"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(
            ["optimize", "mcf", "--machine", "intel-i7-2600k", "--scale", "0.2"]
        )
        assert args.workload == "mcf"
        assert args.machine == "intel-i7-2600k"
        assert args.scale == 0.2

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "mcf", "--machine", "sparc"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            [
                "simulate", "mcf", "--retries", "4",
                "--cell-timeout", "30", "--best-effort",
            ]
        )
        assert args.retries == 4
        assert args.cell_timeout == 30.0
        assert args.strict is False

    def test_strict_is_default_and_exclusive(self):
        assert build_parser().parse_args(["simulate", "mcf"]).strict is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "mcf", "--strict", "--best-effort"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out
        assert "cg" in out  # parallel section

    def test_optimize_small(self, capsys):
        assert main(["optimize", "libquantum", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "prefetches inserted" in out

    def test_optimize_emit_asm(self, capsys):
        assert main(["optimize", "libquantum", "--scale", "0.05", "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert ".program libquantum" in out
        assert "prefetch" in out

    def test_simulate_small(self, capsys):
        code = main(
            ["simulate", "omnetpp", "--scale", "0.05", "--configs", "swnt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "swnt" in out

    def test_mrc_small(self, capsys):
        assert main(["mrc", "mcf", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "miss-ratio curves" in out

    def test_unknown_workload_is_clean_error(self, capsys):
        assert main(["optimize", "notabench", "--scale", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Miss Ratio Modeling" in out


    def test_characterize_small(self, capsys):
        assert main(["characterize", "cigar", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out and "per-instruction" in out


class TestFaultToleranceCli:
    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        from repro import faults
        from repro.experiments import runner

        faults.disarm()
        runner.clear_memo()
        yield
        faults.disarm()

    def _poison(self, config):
        from repro import faults

        faults.arm(
            "worker.compute",
            "raise",
            match=lambda s: getattr(s, "config", None) == config,
        )

    def test_best_effort_renders_survivors_and_exits_3(self, capsys):
        self._poison("swnt")
        code = main(
            [
                "simulate", "omnetpp", "--scale", "0.05",
                "--configs", "hw,swnt", "--no-cache",
                "--best-effort", "--retries", "0",
            ]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "baseline" in captured.out and "failed" in captured.out
        assert "cell(s) failed permanently" in captured.err
        assert "swnt" in captured.err

    def test_strict_failure_exits_2_with_table(self, capsys):
        self._poison("hw")
        code = main(
            [
                "simulate", "omnetpp", "--scale", "0.05",
                "--configs", "hw", "--no-cache", "--retries", "0",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "cell(s) failed permanently" in err

    def test_best_effort_lost_baseline_exits_3(self, capsys):
        self._poison("baseline")
        code = main(
            [
                "simulate", "omnetpp", "--scale", "0.05",
                "--configs", "hw", "--no-cache",
                "--best-effort", "--retries", "0",
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "baseline cell failed" in err
