"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_optimize_args(self):
        args = build_parser().parse_args(
            ["optimize", "mcf", "--machine", "intel-i7-2600k", "--scale", "0.2"]
        )
        assert args.workload == "mcf"
        assert args.machine == "intel-i7-2600k"
        assert args.scale == 0.2

    def test_unknown_machine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["optimize", "mcf", "--machine", "sparc"])

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            [
                "simulate", "mcf", "--retries", "4",
                "--cell-timeout", "30", "--best-effort",
            ]
        )
        assert args.retries == 4
        assert args.cell_timeout == 30.0
        assert args.strict is False

    def test_strict_is_default_and_exclusive(self):
        assert build_parser().parse_args(["simulate", "mcf"]).strict is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "mcf", "--strict", "--best-effort"])


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out
        assert "cg" in out  # parallel section

    def test_optimize_small(self, capsys):
        assert main(["optimize", "libquantum", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "prefetches inserted" in out

    def test_optimize_emit_asm(self, capsys):
        assert main(["optimize", "libquantum", "--scale", "0.05", "--emit-asm"]) == 0
        out = capsys.readouterr().out
        assert ".program libquantum" in out
        assert "prefetch" in out

    def test_simulate_small(self, capsys):
        code = main(
            ["simulate", "omnetpp", "--scale", "0.05", "--configs", "swnt"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "swnt" in out

    def test_mrc_small(self, capsys):
        assert main(["mrc", "mcf", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "miss-ratio curves" in out

    def test_unknown_workload_is_clean_error(self, capsys):
        assert main(["optimize", "notabench", "--scale", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Miss Ratio Modeling" in out


    def test_characterize_small(self, capsys):
        assert main(["characterize", "cigar", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out and "per-instruction" in out


class TestFaultToleranceCli:
    @pytest.fixture(autouse=True)
    def _clean_faults(self):
        from repro import faults
        from repro.experiments import runner

        faults.disarm()
        runner.clear_memo()
        yield
        faults.disarm()

    def _poison(self, config):
        from repro import faults

        faults.arm(
            "worker.compute",
            "raise",
            match=lambda s: getattr(s, "config", None) == config,
        )

    def test_best_effort_renders_survivors_and_exits_3(self, capsys):
        self._poison("swnt")
        code = main(
            [
                "simulate", "omnetpp", "--scale", "0.05",
                "--configs", "hw,swnt", "--no-cache",
                "--best-effort", "--retries", "0",
            ]
        )
        assert code == 3
        captured = capsys.readouterr()
        assert "baseline" in captured.out and "failed" in captured.out
        assert "cell(s) failed permanently" in captured.err
        assert "swnt" in captured.err

    def test_strict_failure_exits_2_with_table(self, capsys):
        self._poison("hw")
        code = main(
            [
                "simulate", "omnetpp", "--scale", "0.05",
                "--configs", "hw", "--no-cache", "--retries", "0",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "cell(s) failed permanently" in err

    def test_best_effort_lost_baseline_exits_3(self, capsys):
        self._poison("baseline")
        code = main(
            [
                "simulate", "omnetpp", "--scale", "0.05",
                "--configs", "hw", "--no-cache",
                "--best-effort", "--retries", "0",
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "baseline cell failed" in err


class TestRunCli:
    """The journaled ``repro run`` command and its resume/list surface."""

    def test_run_parser_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workloads == "libquantum,mcf"
        assert args.resume is None
        assert args.run_id is None
        assert args.list_runs is False

    def test_cache_quota_size_suffixes(self):
        args = build_parser().parse_args(["run", "--cache-quota", "512M"])
        assert args.cache_quota == 512 * 1024 * 1024
        args = build_parser().parse_args(["simulate", "mcf", "--cache-quota", "2G"])
        assert args.cache_quota == 2 * 1024**3
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cache-quota", "lots"])

    def test_run_then_resume_bit_identical(self, tmp_path, capsys):
        import json

        from repro.experiments import runner

        runs = str(tmp_path / "runs")
        out1 = tmp_path / "a.json"
        out2 = tmp_path / "b.json"
        common = [
            "run", "--workloads", "libquantum", "--configs", "baseline,swnt",
            "--scale", "0.05", "--no-cache", "--runs-dir", runs,
        ]
        assert main([*common, "--run-id", "r1", "--json-out", str(out1)]) == 0
        assert "run r1" in capsys.readouterr().out
        runner.clear_memo()
        assert main([*common, "--resume", "r1", "--json-out", str(out2)]) == 0
        a, b = json.loads(out1.read_text()), json.loads(out2.read_text())
        assert a["run_id"] == b["run_id"] == "r1"
        assert a["results"] == b["results"]

    def test_run_list(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main([
            "run", "--workloads", "libquantum", "--configs", "baseline",
            "--scale", "0.05", "--no-cache", "--runs-dir", runs, "--run-id", "only",
        ]) == 0
        capsys.readouterr()
        assert main(["run", "--list", "--runs-dir", runs]) == 0
        assert "only" in capsys.readouterr().out

    def test_resume_unknown_run_is_clean_error(self, tmp_path, capsys):
        code = main([
            "run", "--resume", "ghost", "--no-cache",
            "--runs-dir", str(tmp_path / "runs"),
        ])
        assert code == 2
        assert "ghost" in capsys.readouterr().err


class TestCacheCli:
    """``repro cache verify|gc|stats``."""

    def _seed(self, tmp_path):
        from repro.api import ExperimentSpec
        from repro.cache import ResultCache
        from repro.experiments.runner import PROFILE_RATE, compute_run

        cache = ResultCache(tmp_path / "cache")
        spec = ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", scale=0.05)
        cache.put_stats(spec, PROFILE_RATE, compute_run(spec))
        return cache, cache._path("stats", cache.stats_key(spec, PROFILE_RATE))

    def test_verify_clean_exits_0(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["cache", "verify", "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_corrupt_quarantines_and_exits_1(self, tmp_path, capsys):
        import json

        _, path = self._seed(tmp_path)
        path.write_bytes(b"\x00garbage")
        report_path = tmp_path / "report.json"
        code = main([
            "cache", "verify", "--cache-dir", str(tmp_path / "cache"),
            "--json-out", str(report_path),
        ])
        assert code == 1
        assert "corrupt" in capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["corrupt"] == 1
        assert report["quarantined"]
        assert not path.exists()

    def test_gc_and_stats(self, tmp_path, capsys):
        self._seed(tmp_path)
        assert main(["cache", "gc", "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "cache gc:" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "stats" in out and "bytes" in out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestInterruptedExitCode:
    def test_exit_interrupted_is_75(self):
        from repro.cli import EXIT_INTERRUPTED

        assert EXIT_INTERRUPTED == 75

    def test_run_interrupted_maps_to_75_with_hint(self, tmp_path, capsys, monkeypatch):
        from repro import api
        from repro.errors import RunInterrupted

        def _boom(*args, **kwargs):
            raise RunInterrupted("stopped", run_id="r9", done=1, total=4)

        monkeypatch.setattr(api, "run_journaled", _boom)
        code = main([
            "run", "--workloads", "libquantum", "--configs", "baseline",
            "--scale", "0.05", "--no-cache", "--runs-dir", str(tmp_path),
        ])
        assert code == 75
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume r9" in err
