"""Tests for the online optimiser and phase-aware sampling."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy
from repro.config import amd_phenom_ii
from repro.core import OnlineOptimizer
from repro.errors import AnalysisError, SamplingError
from repro.sampling import (
    PhaseDetector,
    phase_aware_sample,
    window_signatures,
)
from repro.trace import MemoryTrace
from repro.trace.synthesis import chase_pattern, strided_pattern


def two_phase_trace(n_each=150_000, seed=0):
    """Phase A: pc0 streams; phase B: pc1 streams elsewhere."""
    a = MemoryTrace.loads(
        np.zeros(n_each, np.int64), strided_pattern(0, n_each, 16)
    )
    b = MemoryTrace.loads(
        np.ones(n_each, np.int64), strided_pattern(1 << 31, n_each, 16)
    )
    return MemoryTrace.concat([a, b])


class TestOnlineOptimizer:
    def test_adapts_to_phase_change(self, amd):
        trace = two_phase_trace()
        online = OnlineOptimizer(amd, window_refs=50_000, history_windows=1)
        result = online.run(trace, work_per_memop=8.0, mlp=8.0)
        assert result.n_windows == 6
        # the plan eventually covers pc0 in phase A and pc1 in phase B
        early = result.plans[1].prefetched_pcs
        late = result.plans[-1].prefetched_pcs
        assert 0 in early
        assert 1 in late and 0 not in late
        assert result.plan_changes() >= 1

    def test_online_beats_no_prefetching(self, amd):
        trace = two_phase_trace()
        online = OnlineOptimizer(amd, window_refs=50_000, history_windows=1)
        result = online.run(trace, work_per_memop=8.0, mlp=8.0)
        base = CacheHierarchy(amd).run(trace, work_per_memop=8.0, mlp=8.0)
        assert result.stats.cycles < base.cycles

    def test_bad_params(self, amd):
        with pytest.raises(AnalysisError):
            OnlineOptimizer(amd, window_refs=0)
        with pytest.raises(AnalysisError):
            OnlineOptimizer(amd, history_windows=0)


class TestWindowSignatures:
    def test_similar_windows_similar_signatures(self):
        trace = MemoryTrace.loads(
            np.zeros(40_000, np.int64),
            strided_pattern(0, 40_000, 64, wrap_bytes=64 * 1024),
        )
        sigs = window_signatures(trace, 10_000)
        assert sigs.shape[0] == 4
        # re-sweeping the same region: consecutive windows nearly identical
        assert sigs[0] @ sigs[1] > 0.95

    def test_different_regions_dissimilar(self):
        a = strided_pattern(0, 10_000, 64)
        b = strided_pattern(1 << 31, 10_000, 64)
        trace = MemoryTrace.loads(np.zeros(20_000, np.int64), np.concatenate([a, b]))
        sigs = window_signatures(trace, 10_000)
        assert sigs[0] @ sigs[1] < 0.8

    def test_empty_trace(self):
        assert window_signatures(MemoryTrace.empty(), 100).shape[0] == 0

    def test_bad_window(self):
        with pytest.raises(SamplingError):
            window_signatures(MemoryTrace.empty(), 0)


class TestPhaseDetector:
    def test_repeating_phases_reuse_ids(self):
        det = PhaseDetector()
        sig_a = np.zeros(16)
        sig_a[0] = 1.0
        sig_b = np.zeros(16)
        sig_b[8] = 1.0
        ids = [det.classify(s) for s in (sig_a, sig_b, sig_a, sig_b)]
        assert ids == [0, 1, 0, 1]
        assert det.n_phases == 2

    def test_threshold_validation(self):
        with pytest.raises(SamplingError):
            PhaseDetector(similarity_threshold=0.0)


class TestPhaseAwareSampling:
    def test_abab_sampled_twice(self, rng):
        n = 30_000
        a = strided_pattern(0, n, 64, wrap_bytes=1 << 20)
        b = chase_pattern(rng, 1 << 31, 4096, n)
        trace = MemoryTrace.loads(
            np.repeat([0, 1, 0, 1], n).astype(np.int64),
            np.concatenate([a, b, a, b]),
        )
        profile = phase_aware_sample(trace, window_refs=n, rate=5e-3)
        assert profile.n_phases == 2
        # only the first A and first B windows were sampled
        assert set(profile.sampled_windows.values()) == {0, 1}
        assert len(profile.sampling.reuse) > 0

    def test_phase_samples_drive_analysis(self, amd):
        from repro.core import PrefetchOptimizer

        n = 40_000
        stream = strided_pattern(0, n, 16)
        trace = MemoryTrace.loads(np.zeros(2 * n, np.int64),
                                  np.concatenate([stream, stream + (n * 16)]))
        profile = phase_aware_sample(trace, window_refs=n, rate=5e-3)
        plan = PrefetchOptimizer(amd).analyze(profile.sampling)
        assert 0 in plan.prefetched_pcs
