"""Calibration regression for the irregular corpus classes.

The ClassBounds for the graph-analytics pattern classes in
``repro.validate.corpus`` were calibrated against measured StatStack
error (seed 0, worst case over the quick *and* full corpora at sampling
rate 1.0).  This suite pins the calibration in both directions:

* **No regression** — every quick-corpus entry of a new class must stay
  inside its bound at rate 1.0 and inside ``bound + sampled_slack`` at a
  sparse rate, via the real differential engine.  A model or generator
  change that degrades accuracy fails here first.
* **No slack creep** — each bound must sit within 2x of the recorded
  calibration measurement (or an absolute floor of 0.02 for metrics
  whose measured error is tiny).  Nobody can silently widen a bound to
  paper over a regression without updating the recorded calibration —
  and the diff will show exactly which measurement moved.
"""

from __future__ import annotations

import pytest

from repro.validate.corpus import CLASS_BOUNDS, build_corpus
from repro.validate.differential import DiffSettings, diff_one

#: Worst rate-1.0 measurement per class over the quick and full corpora
#: (seed 0), recorded when the bounds were set.  Update ONLY alongside a
#: deliberate bound change, with fresh measurements.
CALIBRATION = {
    "csr": {"linf": 0.0327, "l1": 0.0047, "pc": 0.0002},
    "bfs": {"linf": 0.0, "l1": 0.0, "pc": 0.0},
    "hash": {"linf": 0.0528, "l1": 0.0089, "pc": 0.0017},
    "indirect": {"linf": 0.3130, "l1": 0.0448, "pc": 0.0006},
    "graph": {"linf": 0.0034, "l1": 0.0006, "pc": 0.0017},
}

#: Bounds tighter than this are allowed regardless of the measured
#: error: below it, run-to-run noise dominates and 2x of a near-zero
#: measurement would be meaninglessly strict.
FLOOR = 0.02

NEW_CLASSES = sorted(CALIBRATION)


@pytest.fixture(scope="module")
def quick_corpus():
    return build_corpus(seed=0, quick=True)


@pytest.mark.parametrize("cls", NEW_CLASSES)
def test_class_within_bounds_full_and_sparse(quick_corpus, cls):
    """Measured error stays inside the calibrated bound (engine check)."""
    entries = [e for e in quick_corpus if e.cls == cls]
    assert entries, f"quick corpus has no {cls!r} entries"
    settings = DiffSettings(sampler_rates=(1.0, 0.2))
    for entry in entries:
        result = diff_one(entry, settings)
        assert result.passed, f"{entry.name}: {result.failures}"


@pytest.mark.parametrize("cls", NEW_CLASSES)
def test_bound_within_2x_of_calibration(cls):
    """Bounds may not drift beyond 2x the recorded measurement."""
    bounds = CLASS_BOUNDS[cls]
    recorded = CALIBRATION[cls]
    for metric, bound in (("linf", bounds.linf), ("l1", bounds.l1), ("pc", bounds.pc)):
        ceiling = max(2.0 * recorded[metric], FLOOR)
        assert bound <= ceiling, (
            f"{cls}.{metric} bound {bound} exceeds 2x calibrated "
            f"measurement {recorded[metric]} (ceiling {ceiling}); "
            "re-measure and update CALIBRATION deliberately"
        )
        # The recorded measurement itself must respect the bound —
        # otherwise the calibration table and the bounds disagree.
        assert recorded[metric] <= bound, (
            f"{cls}.{metric} calibration {recorded[metric]} above bound {bound}"
        )


def test_every_new_class_has_calibration():
    # Any future pattern class must arrive with a calibration row.
    irregular = {"csr", "bfs", "hash", "indirect", "graph"}
    assert irregular <= set(CLASS_BOUNDS)
    assert set(CALIBRATION) == irregular
