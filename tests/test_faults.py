"""Fault-injection tests for the engine's fault-tolerance layer.

Covers the deterministic fault registry itself, per-cell retries,
poison-cell bisection, the ``BrokenProcessPool`` → serial fallback,
hung-group deadlines, cache-IO degradation, and the acceptance scenario:
a ≥24-cell grid with a ~10 % injected worker-failure rate must yield
bit-identical results for every healthy cell plus a failure report
naming exactly the poisoned specs.
"""

import time

import pytest

from repro import faults
from repro.api import ExperimentSpec
from repro.cache import ResultCache
from repro.core.serialization import stats_to_dict
from repro.errors import CellFailure, EngineError
from repro.experiments import runner
from repro.experiments.engine import ExperimentEngine, FailureReport
from repro.faults import InjectedFault, match_fraction
from repro.retry import RetryPolicy

SCALE = 0.05
GRID = ExperimentSpec.grid(
    ("libquantum", "mcf", "lbm"), ("amd-phenom-ii",), ("baseline", "hw"),
    scales=(SCALE,),
)

#: No sleeping between attempts — faults are deterministic anyway.
FAST = RetryPolicy(max_attempts=2, base_delay=0.0)
ONE_SHOT = RetryPolicy(max_attempts=1, base_delay=0.0)


@pytest.fixture(autouse=True)
def _disarm_after():
    faults.disarm()
    yield
    faults.disarm()


def _is(spec):
    return lambda subject: subject == spec


def _dicts(results):
    return {spec: stats_to_dict(stats) for spec, stats in results.items()}


class TestRegistry:
    def test_inactive_by_default(self):
        assert not faults.ACTIVE
        faults.check("worker.compute", None)  # no-op when nothing armed

    def test_arm_disarm_toggle_active(self):
        faults.arm("worker.compute")
        assert faults.ACTIVE
        assert faults.armed_sites() == ("worker.compute",)
        faults.disarm("worker.compute")
        assert not faults.ACTIVE

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            faults.arm("worker.compute", kind="explode")

    def test_raise_fires_and_times_limits(self):
        faults.arm("worker.compute", "raise", times=1)
        with pytest.raises(InjectedFault):
            faults.check("worker.compute", "x")
        faults.check("worker.compute", "x")  # exhausted: no-op

    def test_match_limits_victims(self):
        faults.arm("worker.compute", "raise", match=lambda s: s == "bad")
        faults.check("worker.compute", "good")
        with pytest.raises(InjectedFault):
            faults.check("worker.compute", "bad")

    def test_kill_never_fires_outside_workers(self):
        assert not faults.in_worker()
        faults.arm("worker.compute", "kill")
        faults.check("worker.compute", "x")  # survives: we are the parent

    def test_corrupt_only_polled_via_should_corrupt(self):
        faults.arm("cache.write", "corrupt", times=1)
        faults.check("cache.write", "k")  # raise/hang path skips corrupt
        assert faults.should_corrupt("cache.write", "k")
        assert not faults.should_corrupt("cache.write", "k")  # exhausted

    def test_match_fraction_deterministic_and_bounded(self):
        pred = match_fraction(0.10, seed=0)
        elected = [s for s in GRID if pred(s)]
        assert elected == [s for s in GRID if match_fraction(0.10, 0)(s)]
        assert match_fraction(0.0)(GRID[0]) is False
        assert match_fraction(1.0)(GRID[0]) is True
        with pytest.raises(ValueError):
            match_fraction(1.5)


class TestSerialFaultTolerance:
    def test_transient_fault_retried_to_success(self):
        runner.clear_memo()
        faults.arm("worker.compute", "raise", times=1)
        engine = ExperimentEngine(jobs=1, retry=FAST)
        results = engine.run(GRID)
        assert set(results) == set(GRID)
        assert engine.stats.retries >= 1
        assert not engine.last_failures

    def test_best_effort_isolates_poison_cell(self):
        runner.clear_memo()
        poison = GRID[1]
        faults.arm("worker.compute", "raise", match=_is(poison))
        engine = ExperimentEngine(jobs=1, strict=False, retry=FAST)
        results = engine.run(GRID)
        assert set(results) == set(GRID) - {poison}
        report = engine.last_failures
        assert report.specs() == [poison]
        failure = report.failures[0]
        assert isinstance(failure, CellFailure)
        assert failure.attempts == FAST.max_attempts
        assert isinstance(failure.cause, InjectedFault)
        assert poison.label() in report.format_table()

    def test_strict_raises_engine_error_with_report(self):
        runner.clear_memo()
        poison = GRID[0]
        faults.arm("worker.compute", "raise", match=_is(poison))
        engine = ExperimentEngine(jobs=1, strict=True, retry=FAST)
        with pytest.raises(EngineError) as excinfo:
            engine.run(GRID)
        assert excinfo.value.report.specs() == [poison]
        assert engine.last_failures is excinfo.value.report

    def test_partial_batch_accounted_despite_strict_raise(self):
        """merge_batch must run in a finally: a raising run() still shows
        its completed cells in summary()."""
        runner.clear_memo()
        poison = GRID[-1]
        faults.arm("worker.compute", "raise", match=_is(poison))
        engine = ExperimentEngine(jobs=1, strict=True, retry=ONE_SHOT)
        with pytest.raises(EngineError):
            engine.run(GRID)
        assert engine.stats.batches == 1
        assert engine.stats.cells == len(GRID)
        assert engine.stats.computed == len(GRID) - 1
        assert engine.stats.failed == 1
        assert f"{len(GRID)} cells" in engine.summary()

    def test_untolerated_exception_still_accounts_batch(self):
        """Even an exception the fault layer does not own (here: a
        raising progress callback) must leave the partial batch in
        summary() — merge_batch runs in a finally."""
        runner.clear_memo()

        def explode_on_third(done, total, spec, source):
            if done == 3:
                raise KeyboardInterrupt

        engine = ExperimentEngine(jobs=1, progress=explode_on_third)
        with pytest.raises(KeyboardInterrupt):
            engine.run(GRID)
        assert engine.stats.batches == 1
        assert engine.stats.cells == 3
        assert engine.stats.computed == 3

    def test_progress_reports_failed_source(self):
        runner.clear_memo()
        poison = GRID[2]
        faults.arm("worker.compute", "raise", match=_is(poison))
        seen = []
        engine = ExperimentEngine(
            jobs=1, strict=False, retry=ONE_SHOT,
            progress=lambda done, total, spec, source: seen.append((spec, source)),
        )
        engine.run(GRID)
        assert (poison, "failed") in seen
        assert len(seen) == len(GRID)


class TestParallelFaultTolerance:
    def test_bisection_isolates_poison_cell(self):
        runner.clear_memo()
        healthy = _dicts(ExperimentEngine(jobs=1).run(GRID))
        runner.clear_memo()
        poison = GRID[3]
        faults.arm("worker.compute", "raise", match=_is(poison))
        engine = ExperimentEngine(jobs=2, strict=False, retry=FAST)
        results = engine.run(GRID)
        assert set(results) == set(GRID) - {poison}
        assert engine.last_failures.specs() == [poison]
        # Bisection re-dispatches: splitting the 2-cell group plus the
        # single-cell retries all count.
        assert engine.stats.retries >= 2
        assert _dicts(results) == {s: healthy[s] for s in results}

    def test_broken_pool_falls_back_to_serial(self):
        runner.clear_memo()
        healthy = _dicts(ExperimentEngine(jobs=1).run(GRID))
        runner.clear_memo()
        victim = GRID[2]
        faults.arm("worker.compute", "kill", match=_is(victim))
        engine = ExperimentEngine(jobs=2, strict=False)
        results = engine.run(GRID)  # must not raise BrokenProcessPool
        # Kill faults fire only inside pool workers, so the serial
        # fallback completes every cell, the victim included.
        assert set(results) == set(GRID)
        assert _dicts(results) == healthy
        assert engine.last_failures.fallbacks >= 1
        assert not engine.last_failures

    def test_hung_group_times_out_and_is_isolated(self):
        runner.clear_memo()
        hung = GRID[2]
        faults.arm(
            "worker.compute", "hang", match=_is(hung), hang_seconds=30.0
        )
        policy = RetryPolicy(max_attempts=1, base_delay=0.0, timeout=2.0)
        engine = ExperimentEngine(jobs=2, strict=False, retry=policy)
        start = time.perf_counter()
        results = engine.run(GRID)
        wall = time.perf_counter() - start
        assert wall < 20.0, "deadline must beat the 30s hang"
        assert set(results) == set(GRID) - {hung}
        report = engine.last_failures
        assert report.specs() == [hung]
        assert report.failures[0].cause is None  # timeout, not an exception
        assert report.fallbacks >= 1
        assert "Timeout" in report.format_table()

    def test_acceptance_ten_percent_failures_on_24_cell_grid(self):
        """Acceptance criterion: ~10 % injected worker-failure rate on a
        ≥24-cell grid; best-effort returns bit-identical RunStats for
        every healthy cell and a report naming exactly the poisoned
        specs; strict raises EngineError carrying the same report."""
        grid = ExperimentSpec.grid(
            ("libquantum", "mcf", "lbm", "soplex", "gcc", "omnetpp"),
            ("amd-phenom-ii", "intel-i7-2600k"),
            ("baseline", "hw"),
            scales=(0.04,),
        )
        assert len(grid) >= 24
        poison_match = match_fraction(0.10, seed=0)
        poisoned = {s for s in grid if poison_match(s)}
        assert 0 < len(poisoned) <= len(grid) // 4

        runner.clear_memo()
        healthy = _dicts(ExperimentEngine(jobs=1).run(grid))

        runner.clear_memo()
        faults.arm("worker.compute", "raise", match=poison_match)
        engine = ExperimentEngine(jobs=2, strict=False, retry=FAST)
        results = engine.run(grid)  # never raises BrokenProcessPool
        assert set(results) == set(grid) - poisoned
        assert set(engine.last_failures.specs()) == poisoned
        assert _dicts(results) == {s: healthy[s] for s in results}

        runner.clear_memo()
        strict_engine = ExperimentEngine(jobs=2, strict=True, retry=FAST)
        with pytest.raises(EngineError) as excinfo:
            strict_engine.run(grid)
        assert set(excinfo.value.report.specs()) == poisoned


class TestCacheFaultDegradation:
    def test_read_fault_degrades_to_recompute(self, tmp_path):
        runner.clear_memo()
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        first = engine.run(GRID[:2])
        runner.clear_memo()
        faults.arm("cache.read", "raise")
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        second = warm.run(GRID[:2])
        assert warm.stats.computed == len(GRID[:2])  # every read failed
        assert not warm.last_failures
        assert _dicts(first) == _dicts(second)

    def test_write_fault_skips_store_but_run_succeeds(self, tmp_path):
        runner.clear_memo()
        faults.arm("cache.write", "raise")
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        results = engine.run(GRID[:2])
        assert set(results) == set(GRID[:2])
        assert not engine.last_failures

    def test_decode_fault_degrades_to_recompute(self, tmp_path):
        runner.clear_memo()
        ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True).run(GRID[:1])
        runner.clear_memo()
        faults.arm("serialization.decode", "raise")
        warm = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        results = warm.run(GRID[:1])
        assert set(results) == set(GRID[:1])
        assert warm.stats.computed == 1

    def test_corrupted_write_is_re_persisted_later(self, tmp_path):
        """A torn write (zero-length entry) must not satisfy has_stats,
        so the memo-only cell is re-persisted and readable afterwards."""
        runner.clear_memo()
        spec = GRID[0]
        faults.arm("cache.write", "corrupt", times=1)
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        engine.run([spec])
        cache = ResultCache(tmp_path)
        faults.disarm()
        # The sampling store consumed the one-shot corrupt fault before
        # the stats store?  Locate the stats entry state directly.
        if cache.has_stats(spec, runner.PROFILE_RATE):
            # Stats entry survived; corrupt it by hand to model the torn
            # write landing there instead.
            path = cache._path("stats", cache.stats_key(spec, runner.PROFILE_RATE))
            path.write_text("")
        assert not cache.has_stats(spec, runner.PROFILE_RATE)
        assert cache.get_stats(spec, runner.PROFILE_RATE) is None
        # Second engine pass over the memo-resident cell re-persists it.
        repaired = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        repaired.run([spec])
        assert cache.has_stats(spec, runner.PROFILE_RATE)
        assert cache.get_stats(spec, runner.PROFILE_RATE) is not None


class TestFailureReport:
    def test_empty_report_is_falsy(self):
        report = FailureReport()
        assert not report
        assert len(report) == 0
        assert report.specs() == []

    def test_report_table_lists_each_cell(self):
        report = FailureReport()
        report.add(
            CellFailure(
                "boom", spec=GRID[0], attempts=3, elapsed=1.5,
                cause=ValueError("bad"),
            )
        )
        table = report.format_table()
        assert GRID[0].label() in table
        assert "ValueError" in table
        assert "1.50s" in table


class TestEnospcAndKillSites:
    def test_enospc_kind_raises_real_oserror(self):
        import errno

        faults.arm("disk.enospc", kind="enospc", times=1)
        with pytest.raises(OSError) as excinfo:
            faults.check("disk.enospc", "journal")
        assert excinfo.value.errno == errno.ENOSPC
        faults.check("disk.enospc", "journal")  # times=1: second is a no-op

    def test_enospc_in_kinds_tuple(self):
        assert "enospc" in faults.FAULT_KINDS
        assert "kill" in faults.FAULT_KINDS

    def test_sigkill_site_inert_in_parent_process(self):
        # "kill" faults only fire in marked pool workers; the site in
        # compute_run must be survivable from the parent/serial path.
        faults.arm("worker.sigkill", kind="kill")
        runner.compute_run(GRID[0])  # would os._exit if it fired

    def test_sigkill_site_kills_pool_worker_and_engine_recovers(self):
        # A worker that dies with the group poisons the future; the
        # engine falls back and resolves every healthy cell anyway.
        victim = GRID[0]
        faults.arm("worker.sigkill", kind="kill", match=_is(victim), times=1)
        engine = ExperimentEngine(jobs=2, retry=FAST, strict=False)
        results = engine.run(GRID)
        runner.clear_memo()
        assert set(results) == set(GRID)  # retry succeeded after times=1
