"""Tests for the workload models, mixes and parallel suites."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.isa import execute_program
from repro.sampling import RuntimeSampler
from repro.workloads import (
    ALL_SINGLE_CORE,
    PARALLEL_BENCHMARKS,
    Mix,
    build_program,
    fig8_mix,
    generate_mixes,
    get_parallel_workload,
    get_workload,
    list_parallel_workloads,
    list_workloads,
    workload_seed,
)

SMALL = 0.02


class TestRegistry:
    def test_all_twelve_registered(self):
        assert len(ALL_SINGLE_CORE) == 12
        expected = {
            "gcc", "libquantum", "lbm", "mcf", "omnetpp", "soplex",
            "astar", "xalan", "leslie3d", "GemsFDTD", "milc", "cigar",
        }
        assert set(ALL_SINGLE_CORE) == expected

    def test_suites(self):
        assert "cigar" not in list_workloads(suite="spec2006")
        assert "cigar" in list_workloads(suite="other")

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_unknown_input_set(self):
        with pytest.raises(WorkloadError):
            build_program("mcf", "nonexistent", 1.0)

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            build_program("mcf", "ref", 0.0)


class TestModels:
    @pytest.mark.parametrize("name", ALL_SINGLE_CORE)
    def test_builds_and_executes(self, name):
        program = build_program(name, "ref", SMALL)
        execution = execute_program(program, seed=workload_seed(name, "ref"))
        assert len(execution.trace) > 0
        assert execution.trace.n_prefetch == 0  # original binaries
        assert execution.work_per_memop > 0
        assert execution.mlp >= 1.0

    @pytest.mark.parametrize("name", ALL_SINGLE_CORE)
    def test_deterministic_across_builds(self, name):
        t1 = execute_program(build_program(name, "ref", SMALL), seed=1).trace
        t2 = execute_program(build_program(name, "ref", SMALL), seed=1).trace
        assert t1 == t2

    def test_inputs_change_behaviour(self):
        ref = execute_program(build_program("mcf", "ref", SMALL), seed=1).trace
        train = execute_program(build_program("mcf", "train", SMALL), seed=1).trace
        assert not np.array_equal(ref.addr, train.addr)

    def test_address_spaces_disjoint(self):
        # mixes must never alias across benchmarks
        ranges = {}
        for name in ALL_SINGLE_CORE:
            trace = execute_program(build_program(name, "ref", SMALL), seed=0).trace
            ranges[name] = (int(trace.addr.min()), int(trace.addr.max()))
        names = list(ranges)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                lo_a, hi_a = ranges[a]
                lo_b, hi_b = ranges[b]
                assert hi_a < lo_b or hi_b < lo_a, (a, b)

    def test_libquantum_is_stride_dominated(self):
        program = build_program("libquantum", "ref", 0.1)
        execution = execute_program(program, seed=workload_seed("libquantum", "ref"))
        sampling = RuntimeSampler(rate=5e-3, seed=0).sample(execution.trace)
        from repro.core import analyze_all_strides

        regular = analyze_all_strides(sampling.strides, line_bytes=64)
        # the three 16B streams and the sweep are all regular
        assert len(regular) >= 4

    def test_omnetpp_chases_are_irregular(self):
        program = build_program("omnetpp", "ref", 0.1)
        execution = execute_program(program, seed=workload_seed("omnetpp", "ref"))
        sampling = RuntimeSampler(rate=5e-3, seed=0).sample(execution.trace)
        from repro.core import analyze_stride

        for pc in (0, 1, 2):  # ev1..ev3 chase loads
            assert analyze_stride(sampling.strides, pc, line_bytes=64) is None


class TestMixes:
    def test_canonical_180_mixes(self):
        mixes = generate_mixes()
        assert len(mixes) == 180
        assert all(len(m.members) == 4 for m in mixes)

    def test_deterministic(self):
        a = generate_mixes(count=10)
        b = generate_mixes(count=10)
        assert [m.members for m in a] == [m.members for m in b]

    def test_no_duplicate_members_within_mix(self):
        for mix in generate_mixes(count=50):
            assert len(set(mix.members)) == 4

    def test_varied_inputs_never_ref(self):
        for mix in generate_mixes(count=20, vary_inputs=True):
            assert all(i != "ref" for i in mix.inputs)
            for name, inp in zip(mix.members, mix.inputs):
                assert inp in get_workload(name).inputs

    def test_default_inputs_are_ref(self):
        assert all(
            i == "ref" for m in generate_mixes(count=5) for i in m.inputs
        )

    def test_fig8_mix(self):
        mix = fig8_mix()
        assert set(mix.members) == {"cigar", "gcc", "lbm", "libquantum"}

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            Mix(0, ("mcf", "gcc"), ("ref",))

    def test_pool_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            generate_mixes(count=1, size=4, pool=("mcf", "gcc"))


class TestParallel:
    def test_four_suites(self):
        names = {s.name for s in PARALLEL_BENCHMARKS}
        assert names == {"swim", "cg", "fma3d", "dc"}

    def test_high_bandwidth_flags(self):
        assert get_parallel_workload("swim").high_bandwidth
        assert get_parallel_workload("cg").high_bandwidth
        assert not get_parallel_workload("fma3d").high_bandwidth

    def test_threads_disjoint_data(self):
        programs = get_parallel_workload("swim").build(4, "ref", SMALL)
        assert len(programs) == 4
        traces = [execute_program(p, seed=i).trace for i, p in enumerate(programs)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert (
                    traces[i].addr.max() < traces[j].addr.min()
                    or traces[j].addr.max() < traces[i].addr.min()
                )

    def test_same_structure_per_thread(self):
        programs = get_parallel_workload("cg").build(2, "ref", SMALL)
        assert programs[0].pc_map().keys() != programs[1].pc_map().keys() or True
        assert programs[0].n_static_mem_instructions == programs[1].n_static_mem_instructions

    def test_bad_thread_count(self):
        with pytest.raises(WorkloadError):
            get_parallel_workload("dc").build(0)

    def test_unknown_parallel(self):
        with pytest.raises(WorkloadError):
            get_parallel_workload("applu")

    def test_unknown_input_set(self):
        with pytest.raises(WorkloadError):
            get_parallel_workload("swim").build(2, "huge")

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            get_parallel_workload("cg").build(2, "ref", 0.0)
        with pytest.raises(WorkloadError):
            get_parallel_workload("cg").build(2, "ref", -1.0)

    def test_listing_is_sorted_and_complete(self):
        assert list_parallel_workloads() == ["cg", "dc", "fma3d", "swim"]


class TestSeeding:
    def test_workload_seed_stable(self):
        assert workload_seed("mcf", "ref") == workload_seed("mcf", "ref")
        assert workload_seed("mcf", "ref") != workload_seed("mcf", "alt")
        assert workload_seed("mcf", "ref", salt=1) != workload_seed("mcf", "ref")
