"""End-to-end integration tests: the paper's pipeline and headline shapes.

These run the full machinery on reduced-scale workloads and assert the
*qualitative* results the paper reports — the contracts the benchmark
harness verifies at full scale.
"""

import pytest

from repro.cachesim import FunctionalCacheSim
from repro.config import amd_phenom_ii, get_machine
from repro.core import apply_prefetch_plan
from repro.experiments.runner import (
    hw_prefetcher_for,
    plan_for,
    profile_workload,
    run_all_configs,
)
from repro.multicore.simulator import CoreSpec, MulticoreSimulator

SCALE = 0.12


class TestSingleBenchmarkShapes:
    def test_libquantum_software_prefetching_wins_big(self):
        runs = run_all_configs("libquantum", "amd-phenom-ii", scale=SCALE)
        base, swnt = runs["baseline"], runs["swnt"]
        assert base.cycles / swnt.cycles > 1.2
        # most of the stream prefetches are non-temporal and useful
        assert swnt.sw_useful > 0.5 * swnt.l1.accesses * 0.1

    def test_omnetpp_has_little_to_gain(self):
        runs = run_all_configs("omnetpp", "amd-phenom-ii", scale=SCALE)
        speedup = runs["baseline"].cycles / runs["swnt"].cycles
        assert speedup < 1.20

    def test_cigar_defeats_amd_hardware_prefetcher(self):
        runs = run_all_configs("cigar", "amd-phenom-ii", scale=SCALE)
        hw_speedup = runs["baseline"].cycles / runs["hw"].cycles
        sw_speedup = runs["baseline"].cycles / runs["swnt"].cycles
        assert hw_speedup < 1.0  # paper: >11 % slowdown
        assert sw_speedup > 1.0
        assert runs["hw"].dram_bytes > 1.3 * runs["baseline"].dram_bytes

    def test_hw_prefetching_inflates_traffic_swnt_does_not(self):
        for name in ("mcf", "omnetpp"):
            runs = run_all_configs(name, "intel-i7-2600k", scale=SCALE)
            assert runs["hw"].dram_bytes >= runs["baseline"].dram_bytes
            assert runs["swnt"].dram_bytes <= 1.1 * runs["baseline"].dram_bytes

    def test_prefetch_plan_removes_covered_misses(self):
        machine = amd_phenom_ii()
        profile = profile_workload("leslie3d", "ref", SCALE)
        plan = plan_for("leslie3d", "amd-phenom-ii", "swnt", scale=SCALE)
        base_sim = FunctionalCacheSim(machine.l1)
        base = base_sim.run(profile.execution.trace).total_misses()
        opt_sim = FunctionalCacheSim(machine.l1)
        opt_trace = apply_prefetch_plan(profile.execution.trace, plan)
        opt = opt_sim.run(opt_trace, honor_prefetches=True).total_misses()
        assert opt < 0.6 * base  # leslie3d is stride-dominated


class TestMulticoreShape:
    def test_shared_pressure_hurts_hw_more(self):
        """The paper's core claim on a 2-core microcosm.

        Two bandwidth-hungry benchmarks co-run; under hardware
        prefetching the inflated traffic contends, under the NT scheme
        it does not.  The software mix must retain more of its solo
        speedup than the hardware mix retains of its own.
        """
        machine = get_machine("intel-i7-2600k")

        def specs(config):
            out = []
            for name in ("libquantum", "lbm"):
                profile = profile_workload(name, "ref", SCALE)
                if config == "swnt":
                    from repro.isa import execute_program, insert_prefetches
                    from repro.workloads import workload_seed

                    plan = plan_for(name, machine.name, "swnt", scale=SCALE)
                    execution = execute_program(
                        insert_prefetches(profile.program, plan),
                        seed=workload_seed(name, "ref"),
                    )
                else:
                    execution = profile.execution
                out.append(
                    CoreSpec(
                        execution.trace,
                        execution.work_per_memop,
                        execution.mlp,
                        prefetcher=hw_prefetcher_for(machine) if config == "hw" else None,
                        name=name,
                    )
                )
            return out

        results = {
            config: MulticoreSimulator(machine, specs(config)).run(drain=False)
            for config in ("baseline", "hw", "swnt")
        }
        base = results["baseline"]
        sw_ws = sum(
            b.cycles / c.cycles
            for b, c in zip(base.per_core, results["swnt"].per_core)
        ) / 2
        hw_ws = sum(
            b.cycles / c.cycles
            for b, c in zip(base.per_core, results["hw"].per_core)
        ) / 2
        # At this reduced scale the sweep-retention savings cannot fully
        # materialise (too few passes complete), so the byte comparison
        # against HW is left to the full-scale benchmark harness; here we
        # check the throughput shape and that SW stays near baseline
        # traffic while HW prefetching inflates it.
        base_bytes = results["baseline"].total_bytes
        assert results["swnt"].total_bytes < 1.35 * base_bytes
        assert sw_ws > 1.0
        assert sw_ws > hw_ws * 0.9  # SW competitive or better under sharing


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        a = run_all_configs("gcc", "amd-phenom-ii", scale=0.05, configs=("swnt",))
        # bypass every in-process cache with a fresh computation
        from repro.experiments import runner

        runner.clear_memo()
        b = run_all_configs("gcc", "amd-phenom-ii", scale=0.05, configs=("swnt",))
        assert a["swnt"].cycles == b["swnt"].cycles
        assert a["swnt"].dram_fills == b["swnt"].dram_fills
