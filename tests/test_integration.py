"""End-to-end integration tests: the paper's pipeline and headline shapes.

These run the full machinery on reduced-scale workloads and assert the
*qualitative* results the paper reports — the contracts the benchmark
harness verifies at full scale.
"""

import pytest

from repro.api import CONFIGS, ExperimentSpec, plan, profile, run_many
from repro.cachesim import FunctionalCacheSim
from repro.config import amd_phenom_ii, get_machine
from repro.core import apply_prefetch_plan
from repro.experiments.runner import hw_prefetcher_for
from repro.multicore.simulator import CoreSpec, MulticoreSimulator

SCALE = 0.12


def run_all(workload, machine, scale, configs=CONFIGS):
    """All-configs sweep keyed by config name via the spec API."""
    grid = ExperimentSpec.grid((workload,), (machine,), configs, scales=(scale,))
    return {spec.config: stats for spec, stats in run_many(grid).items()}


class TestSingleBenchmarkShapes:
    def test_libquantum_software_prefetching_wins_big(self):
        runs = run_all("libquantum", "amd-phenom-ii", SCALE)
        base, swnt = runs["baseline"], runs["swnt"]
        assert base.cycles / swnt.cycles > 1.2
        # most of the stream prefetches are non-temporal and useful
        assert swnt.sw_useful > 0.5 * swnt.l1.accesses * 0.1

    def test_omnetpp_has_little_to_gain(self):
        runs = run_all("omnetpp", "amd-phenom-ii", SCALE)
        speedup = runs["baseline"].cycles / runs["swnt"].cycles
        assert speedup < 1.20

    def test_cigar_defeats_amd_hardware_prefetcher(self):
        runs = run_all("cigar", "amd-phenom-ii", SCALE)
        hw_speedup = runs["baseline"].cycles / runs["hw"].cycles
        sw_speedup = runs["baseline"].cycles / runs["swnt"].cycles
        assert hw_speedup < 1.0  # paper: >11 % slowdown
        assert sw_speedup > 1.0
        assert runs["hw"].dram_bytes > 1.3 * runs["baseline"].dram_bytes

    def test_hw_prefetching_inflates_traffic_swnt_does_not(self):
        for name in ("mcf", "omnetpp"):
            runs = run_all(name, "intel-i7-2600k", SCALE)
            assert runs["hw"].dram_bytes >= runs["baseline"].dram_bytes
            assert runs["swnt"].dram_bytes <= 1.1 * runs["baseline"].dram_bytes

    def test_prefetch_plan_removes_covered_misses(self):
        machine = amd_phenom_ii()
        profile_ = profile(ExperimentSpec("leslie3d", "amd-phenom-ii", scale=SCALE))
        plan_ = plan(ExperimentSpec("leslie3d", "amd-phenom-ii", "swnt", scale=SCALE))
        base_sim = FunctionalCacheSim(machine.l1)
        base = base_sim.run(profile_.execution.trace).total_misses()
        opt_sim = FunctionalCacheSim(machine.l1)
        opt_trace = apply_prefetch_plan(profile_.execution.trace, plan_)
        opt = opt_sim.run(opt_trace, honor_prefetches=True).total_misses()
        assert opt < 0.6 * base  # leslie3d is stride-dominated


class TestMulticoreShape:
    def test_shared_pressure_hurts_hw_more(self):
        """The paper's core claim on a 2-core microcosm.

        Two bandwidth-hungry benchmarks co-run; under hardware
        prefetching the inflated traffic contends, under the NT scheme
        it does not.  The software mix must retain more of its solo
        speedup than the hardware mix retains of its own.
        """
        machine = get_machine("intel-i7-2600k")

        def specs(config):
            out = []
            for name in ("libquantum", "lbm"):
                profile_ = profile(ExperimentSpec(name, machine.name, scale=SCALE))
                if config == "swnt":
                    from repro.isa import execute_program, insert_prefetches
                    from repro.workloads import workload_seed

                    plan_ = plan(ExperimentSpec(name, machine.name, "swnt", scale=SCALE))
                    execution = execute_program(
                        insert_prefetches(profile_.program, plan_),
                        seed=workload_seed(name, "ref"),
                    )
                else:
                    execution = profile_.execution
                out.append(
                    CoreSpec(
                        execution.trace,
                        execution.work_per_memop,
                        execution.mlp,
                        prefetcher=hw_prefetcher_for(machine) if config == "hw" else None,
                        name=name,
                    )
                )
            return out

        results = {
            config: MulticoreSimulator(machine, specs(config)).run(drain=False)
            for config in ("baseline", "hw", "swnt")
        }
        base = results["baseline"]
        sw_ws = sum(
            b.cycles / c.cycles
            for b, c in zip(base.per_core, results["swnt"].per_core)
        ) / 2
        hw_ws = sum(
            b.cycles / c.cycles
            for b, c in zip(base.per_core, results["hw"].per_core)
        ) / 2
        # At this reduced scale the sweep-retention savings cannot fully
        # materialise (too few passes complete), so the byte comparison
        # against HW is left to the full-scale benchmark harness; here we
        # check the throughput shape and that SW stays near baseline
        # traffic while HW prefetching inflates it.
        base_bytes = results["baseline"].total_bytes
        assert results["swnt"].total_bytes < 1.35 * base_bytes
        assert sw_ws > 1.0
        assert sw_ws > hw_ws * 0.9  # SW competitive or better under sharing


class TestDeterminism:
    def test_full_pipeline_reproducible(self):
        a = run_all("gcc", "amd-phenom-ii", 0.05, configs=("swnt",))
        # bypass every in-process cache with a fresh computation
        from repro.experiments import runner

        runner.clear_memo()
        b = run_all("gcc", "amd-phenom-ii", 0.05, configs=("swnt",))
        assert a["swnt"].cycles == b["swnt"].cycles
        assert a["swnt"].dram_fills == b["swnt"].dram_fills
