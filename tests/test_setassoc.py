"""Tests for the set-associativity correction."""

import numpy as np
import pytest

from repro.cachesim import FunctionalCacheSim
from repro.config import CacheConfig
from repro.errors import ModelError
from repro.sampling import collect_reuse_samples
from repro.statstack import StatStackModel
from repro.statstack.setassoc import associativity_penalty, set_associative_miss_ratio
from repro.trace import MemoryTrace
from repro.trace.synthesis import strided_pattern


def full_model(trace, line_bytes=64):
    n = trace.n_demand
    return StatStackModel(collect_reuse_samples(trace, np.arange(n), line_bytes))


class TestSetAssociativeMissRatio:
    def test_matches_fully_associative_limit(self):
        t = MemoryTrace.loads(
            np.zeros(20_000, np.int64),
            strided_pattern(0, 20_000, 64, wrap_bytes=128 * 64),
        )
        model = full_model(t)
        fa_cache = CacheConfig("FA", 256 * 64, ways=256)
        sa = set_associative_miss_ratio(model, fa_cache)
        assert sa == pytest.approx(model.miss_ratio(fa_cache.size_bytes), abs=0.02)

    def test_low_associativity_misses_more(self):
        t = MemoryTrace.loads(
            np.zeros(40_000, np.int64),
            strided_pattern(0, 40_000, 64, wrap_bytes=200 * 64),
        )
        model = full_model(t)
        # 256-line cache: the 200-line loop fits fully-associatively but
        # conflicts in a direct-mapped organisation
        direct = CacheConfig("DM", 256 * 64, ways=1)
        assoc8 = CacheConfig("A8", 256 * 64, ways=8)
        mr_direct = set_associative_miss_ratio(model, direct)
        mr_assoc = set_associative_miss_ratio(model, assoc8)
        assert mr_direct > mr_assoc

    def test_validates_against_exact_simulation(self, rng):
        # Smith's refinement assumes lines map to sets randomly; build a
        # loop over 200 *randomly placed* lines (heap-like addresses) so
        # the assumption holds, then compare against exact simulation.
        pool = np.unique(rng.integers(0, 1 << 22, size=400)) [:200] * 64
        addr = np.tile(pool, 300)
        t = MemoryTrace.loads(np.zeros(len(addr), np.int64), addr)
        model = full_model(t)
        for ways in (1, 2, 4):
            cache = CacheConfig("T", 256 * 64, ways=ways)
            sim = FunctionalCacheSim(cache)
            sim.run(t)
            predicted = set_associative_miss_ratio(model, cache)
            assert predicted == pytest.approx(sim.miss_ratio(), abs=0.12), ways

    def test_sequential_mapping_is_upper_bounded(self):
        # for sequential sweeps real hardware maps lines round-robin and
        # conflicts vanish; Smith's random-mapping estimate is then a
        # conservative upper bound, never an underestimate
        t = MemoryTrace.loads(
            np.zeros(60_000, np.int64),
            strided_pattern(0, 60_000, 64, wrap_bytes=220 * 64),
        )
        model = full_model(t)
        cache = CacheConfig("T", 256 * 64, ways=2)
        sim = FunctionalCacheSim(cache)
        sim.run(t)
        assert set_associative_miss_ratio(model, cache) >= sim.miss_ratio()

    def test_per_pc_population(self):
        n = 30_000
        pc = np.tile([0, 1], n // 2)
        addr = np.empty(n, np.int64)
        addr[0::2] = strided_pattern(0, n // 2, 64)  # cold stream: misses
        addr[1::2] = 1 << 30  # stationary: hits
        model = full_model(MemoryTrace.loads(pc, addr))
        cache = CacheConfig("T", 64 * 1024, ways=2)
        assert set_associative_miss_ratio(model, cache, pc=0) > 0.9
        assert set_associative_miss_ratio(model, cache, pc=1) < 0.1
        assert set_associative_miss_ratio(model, cache, pc=99) == 0.0

    def test_line_size_mismatch_rejected(self):
        t = MemoryTrace.loads(np.zeros(100, np.int64), strided_pattern(0, 100, 64))
        model = full_model(t)
        with pytest.raises(ModelError):
            set_associative_miss_ratio(model, CacheConfig("T", 4096, 2, line_bytes=128))

    def test_penalty_non_negative_for_conflicty_loop(self):
        t = MemoryTrace.loads(
            np.zeros(40_000, np.int64),
            strided_pattern(0, 40_000, 64, wrap_bytes=240 * 64),
        )
        model = full_model(t)
        assert associativity_penalty(model, CacheConfig("T", 256 * 64, ways=1)) > 0.0
