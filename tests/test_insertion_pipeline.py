"""Tests for trace-level insertion, the pipeline, and the baselines."""

import numpy as np
import pytest

from repro.baselines import stride_centric_plan
from repro.config import intel_i7_2600k
from repro.core import (
    OptimizerSettings,
    PrefetchDecision,
    PrefetchOptimizer,
    apply_prefetch_plan,
    prefetch_overhead_ratio,
)
from repro.errors import AnalysisError
from repro.isa import execute_program, insert_prefetches
from repro.sampling import RuntimeSampler
from repro.trace import MemOp, MemoryTrace
from repro.trace.synthesis import chase_pattern, strided_pattern
from repro.workloads import build_program, workload_seed


def stream_chase_trace(n=120_000, seed=0):
    """pc0 streams (prefetchable), pc1 chases (not)."""
    rng = np.random.default_rng(seed)
    pc = np.tile([0, 1], n // 2)
    addr = np.empty(n, np.int64)
    addr[0::2] = strided_pattern(0, n // 2, 16)
    addr[1::2] = chase_pattern(rng, 1 << 31, 50_000, n // 2)
    return MemoryTrace.loads(pc, addr)


class TestApplyPrefetchPlan:
    def test_insert_position_and_address(self):
        t = MemoryTrace.loads([0, 1, 0], [100, 200, 300])
        plan = [PrefetchDecision(pc=0, stride=8, distance_bytes=64, nta=False)]
        out = apply_prefetch_plan(t, plan)
        assert len(out) == 5
        assert out.pc.tolist() == [0, 0, 1, 0, 0]
        assert out.addr.tolist() == [100, 164, 200, 300, 364]
        assert out.op.tolist()[1] == int(MemOp.PREFETCH)

    def test_nta_op_used(self):
        t = MemoryTrace.loads([0], [100])
        out = apply_prefetch_plan(
            t, [PrefetchDecision(pc=0, stride=8, distance_bytes=64, nta=True)]
        )
        assert out.op.tolist()[1] == int(MemOp.PREFETCH_NTA)

    def test_negative_target_dropped(self):
        t = MemoryTrace.loads([0, 0], [10, 500])
        out = apply_prefetch_plan(
            t, [PrefetchDecision(pc=0, stride=-8, distance_bytes=-64, nta=False)]
        )
        # first load would prefetch addr -54 -> dropped
        assert len(out) == 3

    def test_empty_plan_identity(self):
        t = MemoryTrace.loads([0], [0])
        assert apply_prefetch_plan(t, []) is t

    def test_duplicate_decision_rejected(self):
        t = MemoryTrace.loads([0], [0])
        plan = [
            PrefetchDecision(pc=0, stride=8, distance_bytes=64, nta=False),
            PrefetchDecision(pc=0, stride=8, distance_bytes=128, nta=False),
        ]
        with pytest.raises(AnalysisError):
            apply_prefetch_plan(t, plan)

    def test_prefetches_not_reinserted(self):
        # applying a plan to an already-optimised trace must only match
        # demand events
        t = MemoryTrace.loads([0, 0], [100, 200])
        plan = [PrefetchDecision(pc=0, stride=8, distance_bytes=64, nta=False)]
        once = apply_prefetch_plan(t, plan)
        twice = apply_prefetch_plan(once, plan)
        assert twice.n_prefetch == 2 * once.n_demand

    def test_overhead_ratio(self):
        t = MemoryTrace.loads([0, 1], [0, 64])
        out = apply_prefetch_plan(
            t, [PrefetchDecision(pc=0, stride=8, distance_bytes=64, nta=False)]
        )
        assert prefetch_overhead_ratio(t, out) == pytest.approx(0.5)


class TestPipeline:
    def test_stream_gets_prefetch_chase_does_not(self, amd):
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        report = PrefetchOptimizer(amd).analyze(sampling)
        assert 0 in report.prefetched_pcs
        assert 1 not in report.prefetched_pcs
        assert report.skipped.get(1) == "irregular-stride"

    def test_bypass_toggle(self, amd):
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        with_nt = PrefetchOptimizer(
            amd, OptimizerSettings(enable_bypass=True)
        ).analyze(sampling)
        without_nt = PrefetchOptimizer(
            amd, OptimizerSettings(enable_bypass=False)
        ).analyze(sampling)
        assert any(d.nta for d in with_nt.decisions)
        assert not any(d.nta for d in without_nt.decisions)

    def test_single_profile_two_machines(self, amd, intel):
        # the paper optimises both targets from one profile (§VII)
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        plan_amd = PrefetchOptimizer(amd).analyze(sampling)
        plan_intel = PrefetchOptimizer(intel).analyze(sampling)
        assert plan_amd.prefetched_pcs == plan_intel.prefetched_pcs
        # distances may differ (different latencies/Δ) but stay sane
        for pa in plan_amd.decisions:
            pi = plan_intel.decision_for(pa.pc)
            assert pi is not None
            assert np.sign(pi.distance_bytes) == np.sign(pa.distance_bytes)

    def test_empty_sampling_rejected(self, amd):
        t = MemoryTrace.loads([0], [0])
        sampling = RuntimeSampler(rate=1e-9, seed=0, min_samples=0).sample(t)
        with pytest.raises(AnalysisError):
            PrefetchOptimizer(amd).analyze(sampling)

    def test_latency_recorded(self, amd):
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        report = PrefetchOptimizer(amd).analyze(sampling)
        assert report.latency_used > 0

    def test_report_summary_text(self, amd):
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        report = PrefetchOptimizer(amd).analyze(sampling)
        text = report.summary()
        assert "prefetches inserted" in text


class TestStrideCentricBaseline:
    def test_prefetches_every_strided_load(self, amd):
        # a strided load that never misses: MDDLI rejects, stride-centric
        # inserts anyway (the paper's key contrast)
        n = 80_000
        pc = np.tile([0, 1], n // 2)
        addr = np.empty(n, np.int64)
        addr[0::2] = strided_pattern(0, n // 2, 16)
        addr[1::2] = strided_pattern(1 << 31, n // 2, 8, wrap_bytes=8 * 1024)
        t = MemoryTrace.loads(pc, addr)
        sampling = RuntimeSampler(rate=2e-3, seed=2).sample(t)

        mddli = PrefetchOptimizer(amd).analyze(sampling)
        stride = stride_centric_plan(sampling, amd)
        assert 1 not in mddli.prefetched_pcs
        assert 1 in stride.prefetched_pcs
        assert len(stride.decisions) > len(mddli.decisions)

    def test_no_nta_ever(self, amd):
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        plan = stride_centric_plan(sampling, amd)
        assert plan.decisions and not any(d.nta for d in plan.decisions)

    def test_fixed_lookahead(self, amd):
        t = stream_chase_trace()
        sampling = RuntimeSampler(rate=2e-3, seed=1).sample(t)
        plan = stride_centric_plan(sampling, amd, lookahead_iterations=10)
        d = plan.decision_for(0)
        assert d is not None
        assert d.distance_bytes == 10 * d.stride


class TestEndToEndEquivalence:
    def test_ir_and_trace_insertion_agree(self, amd):
        # the IR rewriter and the trace-level splicer must produce the
        # exact same optimised event stream
        program = build_program("soplex", "ref", scale=0.05)
        seed = workload_seed("soplex", "ref")
        execution = execute_program(program, seed=seed)
        sampling = RuntimeSampler(rate=5e-3, seed=4).sample(execution.trace)
        plan = PrefetchOptimizer(amd).analyze(
            sampling, refs_per_pc=program.refs_per_pc()
        )
        via_ir = execute_program(insert_prefetches(program, plan), seed=seed).trace
        via_trace = apply_prefetch_plan(execution.trace, plan)
        assert via_ir == via_trace
