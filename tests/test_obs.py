"""Tests for the observability layer: tracer, metrics, exporters.

Covers the ISSUE's acceptance points: spans nest across process-pool
workers (worker pids appear in the merged trace), the disabled tracer
allocates zero span objects, metrics survive a fault-injected
retry/bisection episode, and the Chrome-trace export round-trips
``json.loads``.
"""

import json

import pytest

from repro import faults, obs
from repro.api import ExperimentSpec, reset_default_engine
from repro.experiments import runner
from repro.experiments.engine import ExperimentEngine
from repro.retry import RetryPolicy

SCALE = 0.05

#: One libquantum profile group spanning four configs — dispatched as a
#: single task, so the engine's serial path handles it.
GROUP = ExperimentSpec.grid(
    ("libquantum",), ("amd-phenom-ii",), ("baseline", "hw", "sw", "swnt"),
    scales=(SCALE,),
)

#: Two profile groups (two workloads) of three cells each: the engine
#: only spins up the process pool for >1 group, so the worker-span and
#: bisection tests use this grid.
GRID = ExperimentSpec.grid(
    ("libquantum", "mcf"), ("amd-phenom-ii",), ("baseline", "hw", "swnt"),
    scales=(SCALE,),
)

FAST = RetryPolicy(max_attempts=2, base_delay=0.0)
ONE_SHOT = RetryPolicy(max_attempts=1, base_delay=0.0)


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with tracing off and metrics empty."""
    obs.disable()
    obs.reset_metrics()
    faults.disarm()
    yield
    obs.disable()
    obs.reset_metrics()
    faults.disarm()
    reset_default_engine()


class TestSpanMechanics:
    def test_nesting_depth_and_category(self):
        tracer = obs.enable()
        with obs.span("alpha.outer"):
            with obs.span("alpha.inner"):
                with obs.span("beta.leaf"):
                    pass
        by_name = {e["name"]: e for e in tracer.finished}
        assert by_name["alpha.outer"]["depth"] == 0
        assert by_name["alpha.inner"]["depth"] == 1
        assert by_name["beta.leaf"]["depth"] == 2
        # cat_root: no enclosing span of the same category
        assert by_name["alpha.outer"]["cat_root"]
        assert not by_name["alpha.inner"]["cat_root"]
        assert by_name["beta.leaf"]["cat_root"]

    def test_attributes_and_set(self):
        tracer = obs.enable()
        with obs.span("x.y", a=1) as s:
            s.set(b="two")
        (event,) = tracer.finished
        assert event["attrs"] == {"a": 1, "b": "two"}

    def test_exception_recorded_and_propagated(self):
        tracer = obs.enable()
        with pytest.raises(ValueError):
            with obs.span("x.fail"):
                raise ValueError("boom")
        (event,) = tracer.finished
        assert event["attrs"]["error"] == "ValueError"

    def test_phase_totals_no_double_count_within_category(self):
        tracer = obs.enable(deterministic=True)
        with obs.span("alpha.outer"):
            with obs.span("alpha.inner"):
                pass
        totals = tracer.phase_totals()
        # only the category-root span contributes to "alpha"
        outer = next(e for e in tracer.finished if e["name"] == "alpha.outer")
        assert totals["alpha"] == pytest.approx(outer["dur"] / 1e6)

    def test_deterministic_tracer_reproducible(self):
        def record():
            tracer = obs.enable(deterministic=True)
            tracer.clear()
            with obs.span("a.one", k=1):
                with obs.span("b.two"):
                    pass
            events = list(tracer.finished)
            obs.disable()
            return events

        assert record() == record()

    def test_drain_filters_foreign_pids(self):
        tracer = obs.enable()
        with obs.span("x.mine"):
            pass
        tracer.ingest([{"name": "x.foreign", "ts": 0.0, "dur": 1.0,
                        "pid": -1, "tid": 0, "depth": 0, "cat_root": True,
                        "attrs": {}}])
        drained = tracer.drain()
        assert [e["name"] for e in drained] == ["x.mine"]
        assert tracer.finished == []


class TestDisabledOverhead:
    def test_disabled_span_is_shared_noop(self):
        assert obs.span("anything", k=1) is obs.NOOP_SPAN
        assert obs.span("other") is obs.NOOP_SPAN

    def test_disabled_allocates_no_span_objects(self):
        before = obs.Span.allocated
        for _ in range(200):
            with obs.span("hot.path", attr=42) as s:
                s.set(more=True)
        assert obs.Span.allocated == before

    def test_disabled_pipeline_allocates_no_span_objects(self):
        runner.clear_memo()
        before = obs.Span.allocated
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run(GROUP[:2])
        assert obs.Span.allocated == before

    def test_enable_disable_toggle(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        assert obs.ENABLED
        obs.disable()
        assert not obs.enabled()
        assert not obs.ENABLED


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(1.0)
        reg.histogram("h").observe(3.0)
        d = reg.as_dict()
        assert d["c"]["value"] == 3
        assert d["g"]["value"] == 7
        assert d["h"] == {
            "kind": "histogram", "count": 2, "sum": 4.0,
            "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_kind_collision_rejected(self):
        reg = obs.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_merge_snapshot(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("n").inc(2)
        a.histogram("h").observe(5.0)
        b.counter("n").inc(3)
        b.histogram("h").observe(1.0)
        b.gauge("g").set(9)
        a.merge(b.snapshot())
        d = a.as_dict()
        assert d["n"]["value"] == 5
        assert d["h"]["count"] == 2 and d["h"]["min"] == 1.0 and d["h"]["max"] == 5.0
        assert d["g"]["value"] == 9


class TestWorkerSpans:
    def test_spans_ship_back_from_pool_workers(self):
        runner.clear_memo()
        obs.enable()
        tracer = obs.get_tracer()
        tracer.clear()
        engine = ExperimentEngine(jobs=2, use_cache=False)
        engine.run(GRID)
        events = list(tracer.finished)
        pids = {e["pid"] for e in events}
        import os

        assert os.getpid() in pids
        worker_pids = pids - {os.getpid()}
        assert worker_pids, "no worker spans were shipped back"
        # worker spans nest (cell.compute encloses cachesim.run etc.)
        worker_events = [e for e in events if e["pid"] in worker_pids]
        assert any(e["depth"] > 0 for e in worker_events)
        categories = {e["name"].split(".", 1)[0] for e in events}
        assert {"engine", "cell", "profile", "cachesim"} <= categories
        assert len(categories) >= 5

    def test_worker_metrics_merge_into_parent(self):
        runner.clear_memo()
        obs.enable()
        obs.get_tracer().clear()
        engine = ExperimentEngine(jobs=2, use_cache=False)
        engine.run(GRID)
        d = obs.metrics().as_dict()
        assert d["engine.cells"]["value"] == len(GRID)
        assert d["sim.cells"]["value"] >= len(GRID)  # computed in workers
        assert "engine.cache.memo_hits" in d
        assert "engine.cache.disk_hits" in d


class TestMetricsSurviveFaults:
    def test_retry_episode_counted(self):
        runner.clear_memo()
        obs.enable()
        obs.get_tracer().clear()
        spec = GROUP[0]
        faults.arm(
            "worker.compute", "raise", times=1,
            match=lambda s: s == spec,
        )
        engine = ExperimentEngine(jobs=1, use_cache=False, retry=FAST)
        results = engine.run(GROUP[:2])
        assert len(results) == 2
        d = obs.metrics().as_dict()
        assert d["engine.retries"]["value"] >= 1
        assert d["engine.cells"]["value"] == 2
        assert d["engine.cells.failed"]["value"] == 0

    def test_bisection_episode_counted(self):
        runner.clear_memo()
        obs.enable()
        obs.get_tracer().clear()
        poison = GRID[1]
        faults.arm(
            "worker.compute", "raise", times=99,
            match=lambda s: s == poison,
        )
        engine = ExperimentEngine(
            jobs=2, use_cache=False, retry=ONE_SHOT, strict=False
        )
        results = engine.run(GRID)
        assert poison not in results
        assert len(results) == len(GRID) - 1
        d = obs.metrics().as_dict()
        assert d["engine.bisections"]["value"] >= 1
        assert d["engine.cells.failed"]["value"] == 1
        # the healthy cells' spans and metrics survived the episode
        assert d["sim.cells"]["value"] >= len(GRID) - 1
        events = obs.get_tracer().finished
        assert any(e["name"] == "engine.bisect" for e in events)


class TestExporters:
    def test_chrome_trace_round_trips_json(self, tmp_path):
        runner.clear_memo()
        obs.enable()
        obs.get_tracer().clear()
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run(GROUP[:2])
        path = obs.write_chrome_trace(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        x_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert x_events
        for event in x_events:
            assert {"name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "repro" for e in meta)
        categories = {e["cat"] for e in x_events}
        assert len(categories) >= 5

    def test_empty_trace_is_valid(self, tmp_path):
        path = obs.write_chrome_trace(tmp_path / "empty.json")
        data = json.loads(path.read_text())
        assert data["traceEvents"] == []

    def test_metrics_dump_round_trips_json(self, tmp_path):
        obs.metrics().counter("a.b").inc(4)
        obs.metrics().histogram("c.d").observe(2.5)
        path = obs.write_metrics(tmp_path / "metrics.json")
        data = json.loads(path.read_text())
        assert data["format"] == "repro-metrics-v1"
        assert data["metrics"]["a.b"]["value"] == 4

    def test_engine_summary_includes_phase_breakdown(self):
        runner.clear_memo()
        obs.enable()
        obs.get_tracer().clear()
        engine = ExperimentEngine(jobs=1, use_cache=False)
        engine.run(GROUP[:1])
        text = engine.summary()
        assert "phases:" in text
        assert "cachesim" in text


class TestConfigureAndCli:
    def test_api_configure_trace_enables_obs(self):
        from repro.api import configure

        assert not obs.enabled()
        configure(jobs=1, use_cache=False, trace=True)
        assert obs.enabled()

    def test_api_configure_deterministic_trace(self):
        from repro.api import configure

        configure(jobs=1, use_cache=False, deterministic_trace=True)
        assert obs.enabled()
        assert obs.get_tracer().deterministic

    def test_cli_trace_and_metrics_out(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        rc = main([
            "mrc", "libquantum", "--scale", str(SCALE),
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        data = json.loads(trace_path.read_text())
        names = {e["name"] for e in data["traceEvents"] if e["ph"] == "X"}
        assert any(n.startswith("sampling.") for n in names)
        assert any(n.startswith("statstack.") for n in names)
        json.loads(metrics_path.read_text())
        err = capsys.readouterr().err
        assert "[obs] trace written" in err
