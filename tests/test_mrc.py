"""Tests for MissRatioCurve and PerPCMissRatios."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.statstack.mrc import MissRatioCurve, default_size_grid


def curve(sizes, ratios):
    return MissRatioCurve(np.array(sizes, np.int64), np.array(ratios))


class TestMissRatioCurve:
    def test_interpolation_log_space(self):
        c = curve([1024, 4096], [1.0, 0.0])
        assert c.at(1024) == pytest.approx(1.0)
        assert c.at(4096) == pytest.approx(0.0)
        assert c.at(2048) == pytest.approx(0.5)  # halfway in log2

    def test_extrapolation_clamps(self):
        c = curve([1024, 4096], [0.8, 0.2])
        assert c.at(64) == pytest.approx(0.8)
        assert c.at(1 << 30) == pytest.approx(0.2)

    def test_drop_between(self):
        c = curve([1024, 4096, 16384], [0.9, 0.5, 0.1])
        assert c.drop_between(1024, 16384) == pytest.approx(0.8)
        with pytest.raises(ModelError):
            c.drop_between(4096, 1024)

    def test_noisy_upward_wiggle_clamps_to_zero(self):
        """Regression: sampling noise must not produce a negative drop.

        A sampled curve may tick *up* a hair between sizes; the drop is
        a physical quantity (misses removed by growing the cache) and
        must clamp at zero, so downstream arithmetic — e.g. ranking
        instructions by drop — cannot see a "negative benefit".
        """
        noisy = curve([1024, 16384, 65536], [0.300, 0.304, 0.301])
        assert noisy.drop_between(1024, 16384) == 0.0
        assert noisy.drop_between(1024, 65536) == 0.0
        # and the bypass decision on such a noisy-but-flat curve: flat.
        assert noisy.is_flat_between(1024, 65536, tolerance=0.05)

    def test_flatness_is_relative(self):
        # 40% -> 38%: relatively flat; 2% -> 0%: not flat
        high = curve([1024, 16384], [0.40, 0.38])
        low = curve([1024, 16384], [0.02, 0.0])
        assert high.is_flat_between(1024, 16384, tolerance=0.10)
        assert not low.is_flat_between(1024, 16384, tolerance=0.10)

    def test_zero_curve_is_flat(self):
        c = curve([1024, 16384], [0.0, 0.0])
        assert c.is_flat_between(1024, 16384)

    def test_validation(self):
        with pytest.raises(ModelError):
            curve([4096, 1024], [0.5, 0.4])  # non-increasing sizes
        with pytest.raises(ModelError):
            curve([1024], [1.5])  # ratio > 1
        with pytest.raises(ModelError):
            curve([], [])

    def test_at_rejects_nonpositive(self):
        c = curve([1024, 4096], [1.0, 0.0])
        with pytest.raises(ModelError):
            c.at(0)


class TestDefaultSizeGrid:
    def test_paper_range(self):
        grid = default_size_grid()
        assert grid[0] == 8 * 1024
        assert grid[-1] == 8 * 1024 * 1024
        assert np.all(np.diff(grid) > 0)

    def test_points_per_octave(self):
        fine = default_size_grid(points_per_octave=2)
        coarse = default_size_grid(points_per_octave=1)
        assert len(fine) == 2 * len(coarse) - 1

    def test_validation(self):
        with pytest.raises(ModelError):
            default_size_grid(min_bytes=0)
        with pytest.raises(ModelError):
            default_size_grid(min_bytes=4096, max_bytes=1024)
