"""Tests for the multicore prefetch-coordination layer."""

import json

import numpy as np
import pytest

from repro import obs
from repro.config import get_machine
from repro.errors import AnalysisError, SimulationError
from repro.hwpref import AdjacentLinePrefetcher
from repro.hwpref.base import DEFAULT_TUNING, PrefetchTuning
from repro.multicore.contention import solve_mix
from repro.multicore.coordinator import (
    ACTION_SCALES,
    N_ACTIONS,
    Coordinator,
    CoordinatorPolicy,
    CoreFeedback,
    HeuristicCoordinator,
    RLCoordinator,
    action_tuning,
    default_policy_path,
    discretise_state,
    load_policy,
    save_policy,
    set_default_policy_path,
    throttle_factor,
    train_coordinator,
)
from repro.multicore.coordinator import _fair_speedup, _synthetic_profile
from repro.multicore.simulator import CoreSpec, MulticoreSimulator
from repro.statstack.mrc import MissRatioCurve
from repro.trace import MemoryTrace
from repro.trace.synthesis import strided_pattern


def fb(name="core", bw_share=0.25, spec_share=0.2, mrc_gradient=0.5, llc_share=0.25):
    return CoreFeedback(
        name=name,
        bw_share=bw_share,
        spec_share=spec_share,
        mrc_gradient=mrc_gradient,
        llc_share=llc_share,
    )


def synthetic_mixes(seed, count, machine, cores=4):
    rng = np.random.default_rng(seed)
    return [
        [_synthetic_profile(rng, machine, f"a{i}") for i in range(cores)]
        for _ in range(count)
    ]


class TestHeuristic:
    def test_idle_controller_leaves_everyone_untuned(self):
        coord = HeuristicCoordinator()
        assert coord.decide([fb(), fb()], rho=0.5) == [DEFAULT_TUNING] * 2

    def test_contended_follows_static_curve(self):
        coord = HeuristicCoordinator()
        (tuning,) = coord.decide([fb(bw_share=1.0, mrc_gradient=0.5)], rho=0.9)
        assert tuning.degree_scale == pytest.approx(throttle_factor(0.9))
        assert not tuning.nta_bypass

    def test_heavy_consumer_hardened(self):
        coord = HeuristicCoordinator()
        heavy, light = coord.decide(
            [fb(bw_share=0.7, mrc_gradient=0.5), fb(bw_share=0.3, mrc_gradient=0.5)],
            rho=0.9,
        )
        assert heavy.degree_scale == pytest.approx(
            max(0.25, throttle_factor(0.9) * 0.75)
        )
        assert light.degree_scale == pytest.approx(throttle_factor(0.9))

    def test_flat_curve_retargeted_to_bypass(self):
        coord = HeuristicCoordinator()
        flat, steep = coord.decide(
            [fb(mrc_gradient=0.0), fb(mrc_gradient=0.6)], rho=0.9
        )
        assert flat.nta_bypass and not steep.nta_bypass

    def test_deterministic(self):
        coord = HeuristicCoordinator()
        feedback = [fb(bw_share=0.6, mrc_gradient=0.0), fb(bw_share=0.4)]
        assert coord.decide(feedback, 0.92) == coord.decide(feedback, 0.92)

    def test_validation(self):
        with pytest.raises(SimulationError):
            HeuristicCoordinator(bw_heavy=0.0)
        with pytest.raises(SimulationError):
            HeuristicCoordinator(harden=1.5)
        with pytest.raises(SimulationError):
            HeuristicCoordinator(flat_eps=-0.1)


class TestActionSpace:
    def test_round_trip_every_action(self):
        seen = set()
        for action in range(N_ACTIONS):
            tuning = action_tuning(action)
            assert tuning.degree_scale in ACTION_SCALES
            seen.add((tuning.degree_scale, tuning.nta_bypass))
        assert len(seen) == N_ACTIONS

    def test_identity_action_is_default_tuning(self):
        assert action_tuning(0) is DEFAULT_TUNING

    def test_out_of_range_rejected(self):
        with pytest.raises(SimulationError):
            action_tuning(N_ACTIONS)

    def test_discretise_state_bands(self):
        assert discretise_state(fb(), rho=0.5, n_cores=4)[0] == 0
        assert discretise_state(fb(), rho=0.99, n_cores=4)[0] == 3
        assert discretise_state(fb(bw_share=0.7), rho=0.9, n_cores=4)[1] == 2
        assert discretise_state(fb(mrc_gradient=0.0), rho=0.9, n_cores=4)[2] == 0
        assert discretise_state(fb(mrc_gradient=0.9), rho=0.9, n_cores=4)[2] == 2
        assert discretise_state(fb(spec_share=0.5), rho=0.9, n_cores=4)[3] == 2


class TestPolicyArtifact:
    def test_save_load_round_trip(self, tmp_path):
        policy = train_coordinator(seed=3, episodes=15)
        path = tmp_path / "policy.json"
        save_policy(policy, path)
        assert load_policy(path) == policy
        # Re-saving the loaded policy is byte-identical (canonical form).
        again = tmp_path / "again.json"
        save_policy(load_policy(path), again)
        assert again.read_text() == path.read_text()

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "not-a-policy", "q": {}}))
        with pytest.raises(AnalysisError):
            load_policy(path)

    def test_training_is_deterministic(self):
        a = train_coordinator(seed=5, episodes=15)
        b = train_coordinator(seed=5, episodes=15)
        assert a == b

    def test_bundled_policy_loads(self):
        policy = load_policy(default_policy_path())
        assert policy.seed == 0
        assert len(policy.q) > 20
        coord = RLCoordinator.default()
        assert coord.policy == policy

    def test_policy_override(self, tmp_path):
        policy = train_coordinator(seed=9, episodes=15)
        path = tmp_path / "override.json"
        save_policy(policy, path)
        set_default_policy_path(path)
        try:
            assert RLCoordinator.default().policy == policy
        finally:
            set_default_policy_path(None)
        assert RLCoordinator.default().policy != policy

    def test_malformed_policy_rejected(self):
        with pytest.raises(SimulationError):
            CoordinatorPolicy(seed=0, episodes=1, alpha=0.1, gamma=0.5,
                              q={(1, 2, 3): (0.0,) * N_ACTIONS})


class TestRLCoordinator:
    def test_unvisited_state_falls_back_to_static(self):
        empty = CoordinatorPolicy(seed=0, episodes=1, alpha=0.1, gamma=0.5, q={})
        coord = RLCoordinator(empty)
        (tuning,) = coord.decide([fb()], rho=0.9)
        assert not tuning.nta_bypass
        assert tuning.degree_scale in ACTION_SCALES

    def test_greedy_action_followed(self):
        state = discretise_state(fb(), rho=0.9, n_cores=1)
        row = [0.0] * N_ACTIONS
        best = 5  # scale 0.5, bypass
        row[best] = 1.0
        policy = CoordinatorPolicy(
            seed=0, episodes=1, alpha=0.1, gamma=0.5, q={state: tuple(row)}
        )
        (tuning,) = RLCoordinator(policy).decide([fb()], rho=0.9)
        assert tuning == action_tuning(best)

    def test_deterministic(self):
        coord = RLCoordinator.default()
        feedback = [fb(bw_share=0.6, mrc_gradient=0.0), fb(bw_share=0.4)]
        assert coord.decide(feedback, 0.92) == coord.decide(feedback, 0.92)


class TestCoordinatedSolve:
    def test_both_policies_beat_static_on_contended_mixes(self):
        machine = get_machine("amd-phenom-ii")
        mixes = synthetic_mixes(7, 10, machine)
        static = [_fair_speedup(solve_mix(machine, m)) for m in mixes]
        heur = [
            _fair_speedup(solve_mix(machine, m, coordinator=HeuristicCoordinator()))
            for m in mixes
        ]
        rl = [
            _fair_speedup(solve_mix(machine, m, coordinator=RLCoordinator.default()))
            for m in mixes
        ]
        assert np.mean(heur) > np.mean(static)
        assert np.mean(rl) > np.mean(static)

    def test_wrong_length_rejected(self):
        class Bad(Coordinator):
            def decide(self, feedback, rho):
                return []

        machine = get_machine("amd-phenom-ii")
        (mix,) = synthetic_mixes(7, 1, machine)
        with pytest.raises(SimulationError):
            solve_mix(machine, mix, coordinator=Bad())

    def test_disabling_retires_speculative_traffic(self):
        class KillAll(Coordinator):
            def decide(self, feedback, rho):
                return [PrefetchTuning(enabled=False)] * len(feedback)

        machine = get_machine("amd-phenom-ii")
        (mix,) = synthetic_mixes(7, 1, machine)
        static = solve_mix(machine, mix)
        killed = solve_mix(machine, mix, coordinator=KillAll())
        assert sum(c.dram_lines for c in killed) < sum(c.dram_lines for c in static)


class _Recorder(Coordinator):
    """Applies a fixed tuning and records every epoch's inputs."""

    def __init__(self, tuning=DEFAULT_TUNING):
        self.calls = []
        self.tuning = tuning

    def decide(self, feedback, rho):
        self.calls.append((tuple(feedback), rho))
        return [self.tuning] * len(feedback)


def _stream_cores(n=2, length=6_000, prefetchers=True):
    cores = []
    for i in range(n):
        trace = MemoryTrace.loads(
            np.zeros(length, np.int64),
            strided_pattern(i * (1 << 24), length, 64),
        )
        mrc = MissRatioCurve(
            np.array([64 * 1024, 8 << 20], dtype=np.int64), np.array([0.5, 0.5])
        )
        cores.append(
            CoreSpec(
                trace=trace,
                prefetcher=AdjacentLinePrefetcher() if prefetchers else None,
                name=f"c{i}",
                mrc=mrc,
            )
        )
    return cores


class TestSimulatorCoordination:
    def test_epochs_fire_and_apply_tunings(self):
        machine = get_machine("amd-phenom-ii")
        recorder = _Recorder(PrefetchTuning(degree_scale=0.5))
        sim = MulticoreSimulator(
            machine, _stream_cores(), coordinator=recorder, epoch_events=1000
        )
        sim.run()
        assert len(recorder.calls) > 1
        feedback, rho = recorder.calls[-1]
        assert len(feedback) == 2 and 0.0 <= rho
        assert all(abs(sum(f.bw_share for f in call[0]) - 1.0) < 1e-9
                   for call in recorder.calls)
        for spec in sim.cores:
            assert spec.prefetcher.tuning.degree_scale == 0.5

    def test_disabling_coordinator_suppresses_prefetches(self):
        machine = get_machine("amd-phenom-ii")
        free = MulticoreSimulator(machine, _stream_cores()).run()
        killed = MulticoreSimulator(
            machine,
            _stream_cores(),
            coordinator=_Recorder(PrefetchTuning(enabled=False)),
            epoch_events=500,
        ).run()
        assert sum(s.hw_prefetches for s in killed.per_core) < sum(
            s.hw_prefetches for s in free.per_core
        )

    def test_wrong_length_rejected(self):
        class Bad(Coordinator):
            def decide(self, feedback, rho):
                return [DEFAULT_TUNING]

        machine = get_machine("amd-phenom-ii")
        sim = MulticoreSimulator(
            machine, _stream_cores(), coordinator=Bad(), epoch_events=500
        )
        with pytest.raises(SimulationError):
            sim.run()

    def test_validation(self):
        machine = get_machine("amd-phenom-ii")
        with pytest.raises(SimulationError):
            MulticoreSimulator(machine, _stream_cores(), epoch_events=0)

    def test_coord_counters(self):
        machine = get_machine("amd-phenom-ii")
        obs.enable()
        try:
            MulticoreSimulator(
                machine,
                _stream_cores(),
                coordinator=_Recorder(PrefetchTuning(degree_scale=0.5, nta_bypass=True)),
                epoch_events=1000,
            ).run()
            reg = obs.metrics()
            epochs = reg.counter("coord.epochs").value
            assert epochs > 0
            assert reg.counter("coord.throttled").value == 2 * epochs
            assert reg.counter("coord.bypassed").value == 2 * epochs
        finally:
            obs.disable()
            obs.reset_metrics()


class TestEngineDeterminism:
    """Coordinated configs through the experiment engine: parallel
    workers must reproduce the serial results byte for byte."""

    SCALE = 0.05

    def _specs(self):
        from repro.api import ExperimentSpec

        return [
            ExperimentSpec(w, "amd-phenom-ii", c, "ref", self.SCALE)
            for w in ("libquantum", "mcf")
            for c in ("hwcoord", "hwrl")
        ]

    def test_parallel_cells_byte_identical_to_serial(self):
        from repro.core.serialization import stats_to_dict
        from repro.experiments import runner
        from repro.experiments.engine import ExperimentEngine

        def canonical(results):
            return {
                spec.label(): json.dumps(stats_to_dict(stats), sort_keys=True)
                for spec, stats in results.items()
            }

        serial = canonical(ExperimentEngine(jobs=1).run(self._specs()))
        runner.clear_memo()
        parallel = canonical(ExperimentEngine(jobs=4).run(self._specs()))
        assert serial == parallel

    def test_coordinated_mix_identical_across_engines(self):
        from repro.experiments.engine import ExperimentEngine
        from repro.experiments.mixes_common import evaluate_mixes
        from repro.workloads.mixes import Mix

        mixes = [Mix(0, ("libquantum", "mcf"), ("ref", "ref"))]
        serial = evaluate_mixes(
            mixes,
            "amd-phenom-ii",
            configs=("hwcoord", "hwrl"),
            scale=self.SCALE,
            engine=ExperimentEngine(jobs=1),
        )
        parallel = evaluate_mixes(
            mixes,
            "amd-phenom-ii",
            configs=("hwcoord", "hwrl"),
            scale=self.SCALE,
            engine=ExperimentEngine(jobs=4),
        )
        for config in ("hwcoord", "hwrl"):
            assert serial[config] == parallel[config]
