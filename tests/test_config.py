"""Tests for machine and cache configuration."""

import pytest

from repro.config import (
    CacheConfig,
    MachineConfig,
    amd_phenom_ii,
    get_machine,
    intel_i7_2600k,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_geometry_derivation(self):
        c = CacheConfig("L1", 64 * 1024, ways=2, line_bytes=64)
        assert c.num_lines == 1024
        assert c.num_sets == 512
        assert c.set_index_bits == 9

    def test_fully_associative(self):
        c = CacheConfig("T", 4096, ways=64, line_bytes=64)
        assert c.num_sets == 1

    def test_rejects_nonpow2_line(self):
        with pytest.raises(ConfigError):
            CacheConfig("T", 4096, ways=2, line_bytes=48)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("T", 4096 + 64, ways=2, line_bytes=64)

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            CacheConfig("T", 0, ways=2)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig("T", 4096, ways=2, hit_latency=-1)

    def test_with_size_resizes_and_keeps_validity(self):
        c = CacheConfig("T", 64 * 1024, ways=2, line_bytes=64)
        small = c.with_size(1024)
        assert small.size_bytes == 1024
        assert small.num_lines == 16
        # geometry stays consistent
        assert small.num_lines % small.ways == 0

    def test_with_size_tiny(self):
        c = CacheConfig("T", 64 * 1024, ways=8, line_bytes=64)
        one = c.with_size(64)
        assert one.num_lines == 1
        assert one.ways == 1


class TestMachineConfig:
    def test_paper_table2_amd(self):
        m = amd_phenom_ii()
        assert m.l1.size_bytes == 64 * 1024
        assert m.l2.size_bytes == 512 * 1024
        assert m.llc.size_bytes == 6 * 1024 * 1024
        assert m.freq_ghz == pytest.approx(2.8)

    def test_paper_table2_intel(self):
        m = intel_i7_2600k()
        assert m.l1.size_bytes == 32 * 1024
        assert m.l2.size_bytes == 256 * 1024
        assert m.llc.size_bytes == 8 * 1024 * 1024
        assert m.freq_ghz == pytest.approx(3.4)
        # paper §VII-E: STREAM measures 15.6 GB/s
        assert m.peak_bandwidth_gbs == pytest.approx(15.6)

    def test_levels_ordering(self, amd):
        l1, l2, llc = amd.levels
        assert l1.size_bytes < l2.size_bytes < llc.size_bytes

    def test_miss_latency_lookup(self, amd):
        assert amd.miss_latency("L2") == amd.l2.hit_latency
        assert amd.miss_latency("DRAM") == amd.dram_latency
        with pytest.raises(ConfigError):
            amd.miss_latency("L9")

    def test_bytes_per_cycle(self, intel):
        bpc = intel.bytes_per_cycle()
        assert bpc == pytest.approx(15.6 / 3.4, rel=1e-6)

    def test_llc_share(self, amd):
        assert amd.llc_share(4) == amd.llc.size_bytes // 4
        with pytest.raises(ConfigError):
            amd.llc_share(0)

    def test_avg_memory_latency_positive(self, amd, intel):
        assert amd.avg_memory_latency > amd.l2.hit_latency
        assert intel.avg_memory_latency < intel.dram_latency

    def test_rejects_shrinking_hierarchy(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                l1=CacheConfig("L1", 64 * 1024, ways=2),
                l2=CacheConfig("L2", 32 * 1024, ways=2),
                llc=CacheConfig("LLC", 1024 * 1024, ways=16),
            )

    def test_rejects_mixed_line_sizes(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                l1=CacheConfig("L1", 32 * 1024, ways=2, line_bytes=32),
                l2=CacheConfig("L2", 64 * 1024, ways=2, line_bytes=64),
                llc=CacheConfig("LLC", 1024 * 1024, ways=16, line_bytes=64),
            )


class TestRegistry:
    def test_get_machine(self):
        assert get_machine("amd-phenom-ii").name == "amd-phenom-ii"
        assert get_machine("intel-i7-2600k").name == "intel-i7-2600k"

    def test_unknown_machine(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            get_machine("sparc")
