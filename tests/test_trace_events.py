"""Tests for the MemoryTrace container."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace import MemOp, MemoryTrace, TraceBuilder


def _mixed_trace():
    return MemoryTrace(
        pc=[0, 1, 0, 2],
        addr=[0, 64, 128, 192],
        op=[MemOp.LOAD, MemOp.STORE, MemOp.PREFETCH, MemOp.PREFETCH_NTA],
    )


class TestMemOp:
    def test_demand_classification(self):
        assert MemOp.LOAD.is_demand and MemOp.STORE.is_demand
        assert not MemOp.PREFETCH.is_demand
        assert MemOp.PREFETCH_NTA.is_prefetch and MemOp.PREFETCH.is_prefetch
        assert not MemOp.LOAD.is_prefetch


class TestMemoryTrace:
    def test_basic_counts(self):
        t = _mixed_trace()
        assert len(t) == 4
        assert t.n_demand == 2
        assert t.n_prefetch == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            MemoryTrace([0], [0, 1], [0])

    def test_negative_addr_rejected(self):
        with pytest.raises(TraceError):
            MemoryTrace([0], [-1], [0])

    def test_bad_op_rejected(self):
        with pytest.raises(TraceError):
            MemoryTrace([0], [0], [7])

    def test_arrays_readonly(self):
        t = _mixed_trace()
        with pytest.raises(ValueError):
            t.addr[0] = 5

    def test_line_addr(self):
        t = MemoryTrace.loads([0, 0, 0], [0, 63, 64])
        assert t.line_addr(64).tolist() == [0, 0, 1]

    def test_line_addr_bad_line_size(self):
        t = _mixed_trace()
        with pytest.raises(TraceError):
            t.line_addr(48)

    def test_demand_only_strips_prefetches(self):
        t = _mixed_trace()
        d = t.demand_only()
        assert len(d) == 2
        assert d.n_prefetch == 0
        assert d.addr.tolist() == [0, 64]

    def test_select(self):
        t = _mixed_trace()
        sel = t.select(t.pc == 0)
        assert len(sel) == 2

    def test_select_bad_mask(self):
        t = _mixed_trace()
        with pytest.raises(TraceError):
            t.select(np.array([True]))

    def test_slicing(self):
        t = _mixed_trace()
        assert len(t[1:3]) == 2
        assert t[1:3].addr.tolist() == [64, 128]

    def test_non_slice_index_rejected(self):
        with pytest.raises(TraceError):
            _mixed_trace()[0]

    def test_concat(self):
        t = _mixed_trace()
        cc = MemoryTrace.concat([t, t])
        assert len(cc) == 8
        assert cc[0:4] == t

    def test_concat_empty(self):
        assert len(MemoryTrace.concat([])) == 0

    def test_equality(self):
        assert _mixed_trace() == _mixed_trace()
        assert not (_mixed_trace() == _mixed_trace()[0:2])

    def test_footprint_lines(self):
        t = MemoryTrace.loads([0, 0, 0, 0], [0, 8, 64, 4096])
        assert t.footprint_lines(64) == 3

    def test_unique_pcs(self):
        assert _mixed_trace().unique_pcs().tolist() == [0, 1, 2]

    def test_iter_chunks(self):
        t = _mixed_trace()
        chunks = list(t.iter_chunks(3))
        assert [len(c) for c in chunks] == [3, 1]
        assert MemoryTrace.concat(chunks) == t

    def test_iter_chunks_bad(self):
        with pytest.raises(TraceError):
            list(_mixed_trace().iter_chunks(0))

    def test_repr(self):
        assert "n=4" in repr(_mixed_trace())


class TestTraceBuilder:
    def test_empty(self):
        assert len(TraceBuilder().build()) == 0

    def test_append_uniform(self):
        b = TraceBuilder()
        b.append_uniform(3, np.array([0, 64, 128]), MemOp.LOAD)
        t = b.build()
        assert t.pc.tolist() == [3, 3, 3]
        assert t.n_demand == 3

    def test_append_trace_and_len(self):
        b = TraceBuilder()
        b.append_trace(_mixed_trace())
        assert len(b) == 4
        assert b.build() == _mixed_trace()

    def test_mismatched_block_rejected(self):
        b = TraceBuilder()
        with pytest.raises(TraceError):
            b.append_block(np.array([1]), np.array([1, 2]), np.array([0]))

    def test_order_preserved(self):
        b = TraceBuilder()
        b.append_uniform(0, np.array([0]), MemOp.LOAD)
        b.append_uniform(1, np.array([64]), MemOp.STORE)
        t = b.build()
        assert t.pc.tolist() == [0, 1]
        assert t.op.tolist() == [int(MemOp.LOAD), int(MemOp.STORE)]
