"""Tests for trace and plan persistence."""

import numpy as np
import pytest

from repro.core import (
    OptimizationReport,
    PrefetchDecision,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    save_plan,
)
from repro.core.report import DelinquentLoad, StrideInfo
from repro.errors import AnalysisError, TraceError
from repro.trace import MemOp, MemoryTrace, load_trace, save_trace


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        t = MemoryTrace(
            [0, 1, 0], [10, 20, 30], [MemOp.LOAD, MemOp.PREFETCH_NTA, MemOp.STORE]
        )
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path) == t

    def test_large_trace_roundtrip(self, tmp_path):
        t = MemoryTrace.loads(
            np.arange(50_000) % 7, np.arange(50_000, dtype=np.int64) * 64
        )
        path = tmp_path / "big.npz"
        save_trace(t, path)
        assert load_trace(path) == t

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(TraceError):
            load_trace(path)


class TestPlanIO:
    def _plan(self):
        r = OptimizationReport(machine_name="amd-phenom-ii", latency_used=123.4)
        r.delinquent = [DelinquentLoad(0, 0.5, 0.4, 0.3, 0.25, 9.9)]
        r.strides = {0: StrideInfo(0, 16, 0.95, 4.0, 40)}
        r.decisions = [PrefetchDecision(0, 16, 320, nta=True)]
        r.skipped = {3: "irregular-stride"}
        return r

    def test_dict_roundtrip(self):
        original = self._plan()
        rebuilt = plan_from_dict(plan_to_dict(original))
        assert rebuilt.machine_name == original.machine_name
        assert rebuilt.latency_used == original.latency_used
        assert rebuilt.decisions == original.decisions
        assert rebuilt.strides == original.strides
        assert rebuilt.skipped == original.skipped
        assert rebuilt.delinquent == original.delinquent

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(self._plan(), path)
        rebuilt = load_plan(path)
        assert rebuilt.decisions == self._plan().decisions

    def test_json_is_human_auditable(self, tmp_path):
        path = tmp_path / "plan.json"
        save_plan(self._plan(), path)
        text = path.read_text()
        assert '"nta": true' in text
        assert '"distance_bytes": 320' in text

    def test_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_plan(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            load_plan(path)

    def test_bad_format_tag(self):
        with pytest.raises(AnalysisError):
            plan_from_dict({"format": "other"})

    def test_rewriter_accepts_loaded_plan(self, tmp_path):
        # end-to-end: analyse on "machine A", ship the JSON, rewrite later
        from repro.core import apply_prefetch_plan

        path = tmp_path / "plan.json"
        save_plan(self._plan(), path)
        plan = load_plan(path)
        t = MemoryTrace.loads([0, 0], [100, 200])
        out = apply_prefetch_plan(t, plan)
        assert out.n_prefetch == 2
