"""Tests for the engine's retry policy."""

import pytest

from repro.errors import ConfigError
from repro.retry import RetryPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts >= 1
        assert policy.timeout is None

    def test_rejects_zero_attempts(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigError):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_non_positive_timeout(self):
        with pytest.raises(ConfigError):
            RetryPolicy(timeout=0.0)
        assert RetryPolicy(timeout=5.0).timeout == 5.0


class TestRetriable:
    def test_budget_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retriable(1)
        assert policy.retriable(2)
        assert not policy.retriable(3)

    def test_single_attempt_never_retries(self):
        assert not RetryPolicy(max_attempts=1).retriable(1)


class TestBackoff:
    def test_deterministic_for_same_inputs(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.delay(2, "mcf/amd/hw@0.3") == b.delay(2, "mcf/amd/hw@0.3")

    def test_jitter_varies_by_token_and_seed(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay(1, "cell-a") != policy.delay(1, "cell-b")
        assert RetryPolicy(seed=1).delay(1, "x") != RetryPolicy(seed=2).delay(1, "x")

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(10) == pytest.approx(0.4)  # capped

    def test_zero_base_delay_never_sleeps(self):
        policy = RetryPolicy(base_delay=0.0)
        assert policy.delay(5, "anything") == 0.0
