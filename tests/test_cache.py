"""Tests for the persistent result cache and its serialisation codecs."""

import json

import numpy as np
import pytest

from repro.api import ExperimentSpec
from repro.cache import ResultCache
from repro.cachesim.stats import LevelStats, PCStats, RunStats
from repro.core.serialization import (
    sampling_from_dict,
    sampling_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.errors import AnalysisError
from repro.experiments.runner import PROFILE_RATE, compute_run, profile_for

SCALE = 0.05
SPEC = ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", scale=SCALE)


def _stats_equal(a: RunStats, b: RunStats) -> bool:
    return (
        a.cycles == b.cycles
        and a.instructions == b.instructions
        and a.l1.accesses == b.l1.accesses
        and a.l1.misses == b.l1.misses
        and a.llc.misses == b.llc.misses
        and a.pc_l1.accesses == b.pc_l1.accesses
        and a.pc_l1.misses == b.pc_l1.misses
        and a.sw_prefetches == b.sw_prefetches
        and a.dram_fills == b.dram_fills
        and a.nta_fills == b.nta_fills
        and a.dram_writebacks == b.dram_writebacks
        and a.line_bytes == b.line_bytes
    )


class TestStatsCodec:
    def test_round_trip_real_run(self):
        stats = compute_run(SPEC)
        data = json.loads(json.dumps(stats_to_dict(stats)))
        assert _stats_equal(stats, stats_from_dict(data))

    def test_round_trip_synthetic(self):
        pc = PCStats()
        pc.record(3, True)
        pc.record(3, False)
        stats = RunStats(
            cycles=12.5,
            instructions=40,
            l1=LevelStats(10, 2),
            l2=LevelStats(2, 1),
            llc=LevelStats(1, 1),
            pc_l1=pc,
            sw_prefetches=5,
            sw_useful=3,
            sw_useless=1,
            sw_late=1,
            hw_prefetches=2,
            hw_useful=1,
            hw_useless=1,
            dram_fills=7,
            nta_fills=2,
            dram_writebacks=3,
            nt_store_writes=1,
            line_bytes=64,
        )
        rebuilt = stats_from_dict(stats_to_dict(stats))
        assert _stats_equal(stats, rebuilt)
        assert rebuilt.dram_bytes == stats.dram_bytes

    def test_unknown_format_rejected(self):
        with pytest.raises(AnalysisError):
            stats_from_dict({"format": "repro-stats-v999"})


class TestSamplingCodec:
    def test_round_trip_real_profile(self):
        sampling = profile_for("mcf", "ref", SCALE).sampling
        data = json.loads(json.dumps(sampling_to_dict(sampling)))
        rebuilt = sampling_from_dict(data)
        assert rebuilt.sample_rate == sampling.sample_rate
        assert rebuilt.n_refs == sampling.n_refs
        assert rebuilt.overhead_estimate == sampling.overhead_estimate
        np.testing.assert_array_equal(rebuilt.reuse.distance, sampling.reuse.distance)
        np.testing.assert_array_equal(rebuilt.reuse.start_pc, sampling.reuse.start_pc)
        np.testing.assert_array_equal(rebuilt.strides.stride, sampling.strides.stride)
        np.testing.assert_array_equal(
            rebuilt.strides.recurrence, sampling.strides.recurrence
        )

    def test_unknown_format_rejected(self):
        with pytest.raises(AnalysisError):
            sampling_from_dict({"format": "nope"})


class TestResultCache:
    def test_stats_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = compute_run(SPEC)
        assert cache.get_stats(SPEC, PROFILE_RATE) is None
        cache.put_stats(SPEC, PROFILE_RATE, stats)
        loaded = cache.get_stats(SPEC, PROFILE_RATE)
        assert loaded is not None and _stats_equal(stats, loaded)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_sampling_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        sampling = profile_for("mcf", "ref", SCALE).sampling
        assert cache.get_sampling("mcf", "ref", SCALE, PROFILE_RATE) is None
        cache.put_sampling("mcf", "ref", SCALE, PROFILE_RATE, sampling)
        loaded = cache.get_sampling("mcf", "ref", SCALE, PROFILE_RATE)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.reuse.distance, sampling.reuse.distance)

    def test_key_depends_on_every_spec_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.stats_key(SPEC, PROFILE_RATE)
        assert cache.stats_key(SPEC.with_config("hw"), PROFILE_RATE) != base
        assert (
            cache.stats_key(
                ExperimentSpec("mcf", "amd-phenom-ii", "baseline", scale=SCALE),
                PROFILE_RATE,
            )
            != base
        )
        assert (
            cache.stats_key(
                ExperimentSpec("libquantum", "intel-i7-2600k", "baseline", scale=SCALE),
                PROFILE_RATE,
            )
            != base
        )

    def test_key_invalidated_by_settings_change(self, tmp_path, monkeypatch):
        """Changing a code-relevant setting (profiling rate, machine
        geometry) must address a different cache entry."""
        cache = ResultCache(tmp_path)
        base = cache.stats_key(SPEC, PROFILE_RATE)
        assert cache.stats_key(SPEC, PROFILE_RATE * 2) != base

        import dataclasses

        from repro import config

        bigger_llc = dataclasses.replace(
            config.amd_phenom_ii(),
            llc=dataclasses.replace(config.amd_phenom_ii().llc, size_bytes=12 << 20),
        )
        monkeypatch.setitem(config.MACHINES, "amd-phenom-ii", lambda: bigger_llc)
        assert cache.stats_key(SPEC, PROFILE_RATE) != base

    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_stats(SPEC, PROFILE_RATE, compute_run(SPEC))
        path = cache._path("stats", cache.stats_key(SPEC, PROFILE_RATE))
        path.write_text("{not json")
        assert cache.get_stats(SPEC, PROFILE_RATE) is None
        assert not path.exists()

    def test_wrong_format_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.stats_key(SPEC, PROFILE_RATE)
        path = cache._path("stats", key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format": "repro-stats-v999"}))
        assert cache.get_stats(SPEC, PROFILE_RATE) is None

    def test_zero_length_entry_is_absent(self, tmp_path):
        """A torn write must not satisfy has_stats — otherwise a
        memo-only cell is never re-persisted and can never be read."""
        cache = ResultCache(tmp_path)
        cache.put_stats(SPEC, PROFILE_RATE, compute_run(SPEC))
        assert cache.has_stats(SPEC, PROFILE_RATE)
        path = cache._path("stats", cache.stats_key(SPEC, PROFILE_RATE))
        path.write_text("")
        assert not cache.has_stats(SPEC, PROFILE_RATE)
        assert cache.get_stats(SPEC, PROFILE_RATE) is None
        assert not path.exists()  # dropped like any corrupt entry

    def test_missing_entry_not_present(self, tmp_path):
        assert not ResultCache(tmp_path).has_stats(SPEC, PROFILE_RATE)

    def test_sweep_stale_tmp_reclaims_orphans(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        cache.put_stats(SPEC, PROFILE_RATE, compute_run(SPEC))
        bucket = cache._path("stats", cache.stats_key(SPEC, PROFILE_RATE)).parent
        stale = bucket / ".deadbeef-orphan.tmp"
        fresh = bucket / ".cafebabe-live.tmp"
        stale.write_text("{")
        fresh.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        assert cache.sweep_stale_tmp(older_than=600) == 1
        assert not stale.exists()
        assert fresh.exists()  # possibly a live concurrent writer
        assert cache.get_stats(SPEC, PROFILE_RATE) is not None  # untouched

    def test_sweep_on_missing_root_is_noop(self, tmp_path):
        assert ResultCache(tmp_path / "nope").sweep_stale_tmp() == 0

    def test_counters_summary(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get_stats(SPEC, PROFILE_RATE)
        counters = cache.counters()
        assert counters["stats"] == (0, 1, 0)
        assert "stats 0 hit/1 miss" in cache.describe()


class TestEntryIntegrity:
    """The self-healing layer: footers, quarantine, verify, quota, ENOSPC."""

    @pytest.fixture(autouse=True)
    def _disarm_after(self):
        from repro import faults

        faults.disarm()
        yield
        faults.disarm()

    def _seeded(self, tmp_path, **kwargs):
        cache = ResultCache(tmp_path, **kwargs)
        cache.put_stats(SPEC, PROFILE_RATE, compute_run(SPEC))
        path = cache._path("stats", cache.stats_key(SPEC, PROFILE_RATE))
        return cache, path

    def test_entries_carry_integrity_footer(self, tmp_path):
        from repro.cache import ENTRY_FORMAT

        _, path = self._seeded(tmp_path)
        raw = path.read_bytes()
        assert ENTRY_FORMAT.encode() in raw
        assert raw.endswith(b"\n")

    def test_single_bit_flip_is_caught_and_quarantined(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0x01
        path.write_bytes(bytes(raw))
        assert cache.get_stats(SPEC, PROFILE_RATE) is None
        assert not path.exists()
        assert cache.integrity.corrupt == 1
        assert cache.integrity.quarantined == 1
        assert len(list(cache.quarantine_dir.iterdir())) == 1

    def test_truncated_entry_is_caught(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get_stats(SPEC, PROFILE_RATE) is None
        assert cache.integrity.corrupt == 1

    def test_torn_write_fault_never_served(self, tmp_path):
        from repro import faults

        faults.arm("cache.torn_write", kind="corrupt", times=1)
        cache, path = self._seeded(tmp_path)
        assert path.exists()  # the torn entry was published...
        assert cache.get_stats(SPEC, PROFILE_RATE) is None  # ...but not trusted
        assert cache.integrity.quarantined == 1

    def test_verify_audits_and_quarantines(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        report = cache.verify()
        assert (report.checked, report.ok, report.corrupt) == (1, 1, 0)
        path.write_bytes(b"garbage")
        report = cache.verify()
        assert report.corrupt == 1
        assert report.quarantined  # names the entry
        assert "corrupt" in report.render()
        assert cache.verify().corrupt == 0  # healed: corpse is gone

    def test_quota_evicts_least_recently_used(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        specs = [
            ExperimentSpec("libquantum", "amd-phenom-ii", c, scale=SCALE)
            for c in ("baseline", "swnt", "hw")
        ]
        for i, spec in enumerate(specs):
            cache.put_stats(spec, PROFILE_RATE, compute_run(spec))
            path = cache._path("stats", cache.stats_key(spec, PROFILE_RATE))
            mtime = time.time() - 1000 + i  # oldest first
            os.utime(path, (mtime, mtime))
        total = cache.entry_stats()["total_bytes"]
        one_entry = total // len(specs)
        evicted = cache.enforce_quota(total - one_entry // 2)
        assert evicted == 1
        assert cache.integrity.evicted == 1
        # the *oldest* entry went; the youngest survives
        assert cache.get_stats(specs[0], PROFILE_RATE) is None
        assert cache.get_stats(specs[-1], PROFILE_RATE) is not None

    def test_read_hit_refreshes_recency(self, tmp_path):
        import os
        import time

        cache, path = self._seeded(tmp_path)
        old = time.time() - 5000
        os.utime(path, (old, old))
        cache.get_stats(SPEC, PROFILE_RATE)
        assert path.stat().st_mtime > old + 1000

    def test_enospc_store_downgrades_to_read_only(self, tmp_path):
        from repro import faults

        cache, path = self._seeded(tmp_path)  # one good entry on disk
        faults.arm("disk.enospc", kind="enospc", times=1)
        other = ExperimentSpec("libquantum", "amd-phenom-ii", "swnt", scale=SCALE)
        cache.put_stats(other, PROFILE_RATE, compute_run(other))  # must not raise
        assert cache.read_only
        assert cache.integrity.write_errors == 1
        assert "[read-only]" in cache.describe()
        # reads keep working; later stores are skipped and counted
        assert cache.get_stats(SPEC, PROFILE_RATE) is not None
        cache.put_stats(other, PROFILE_RATE, compute_run(other))
        assert cache.integrity.write_errors == 2
        assert cache.stats.stores == 1  # only the pre-failure store counted

    def test_gc_reclaims_quarantine_and_reports(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        path.write_bytes(b"junk")
        cache.get_stats(SPEC, PROFILE_RATE)  # quarantines
        assert len(list(cache.quarantine_dir.iterdir())) == 1
        summary = cache.gc(older_than=0.0)
        assert summary["quarantine_removed"] == 1
        assert not list(cache.quarantine_dir.iterdir())

    def test_sweep_counts_journal_temps_per_class(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path / "cache")
        runs = tmp_path / "runs"
        (runs / "some-run").mkdir(parents=True)
        orphan = runs / "some-run" / ".journal-xyz.tmp"
        orphan.write_text("{")
        old = time.time() - 7200
        os.utime(orphan, (old, old))
        assert cache.sweep_stale_tmp(older_than=600, runs_dir=runs) == 1
        assert cache.swept["journal"] == 1
        assert not orphan.exists()
        assert "swept" in cache.describe()

    def test_entry_stats_accounting(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        stats = cache.entry_stats()
        assert stats["kinds"]["stats"]["entries"] == 1
        assert stats["kinds"]["stats"]["bytes"] == path.stat().st_size
        assert stats["total_bytes"] >= path.stat().st_size
        assert stats["quarantined"] == 0
