"""Tests for the set-associative LRU cache."""

import pytest

from repro.cachesim.lru import (
    FLAG_DIRTY,
    FLAG_NTA,
    FLAG_REFERENCED,
    FLAG_SW_PREFETCH,
    LRUCache,
)
from repro.config import CacheConfig


def make_cache(lines=8, ways=2):
    return LRUCache(CacheConfig("T", lines * 64, ways=ways, line_bytes=64))


class TestBasics:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(5)
        c.install(5)
        assert c.lookup(5)

    def test_capacity(self):
        c = make_cache(lines=8, ways=2)
        for line in range(8):
            c.install(line)
        assert len(c) == 8
        assert c.occupancy() == 1.0

    def test_eviction_is_lru(self):
        c = make_cache(lines=4, ways=4)  # one set, 4 ways? 4 lines/4 ways=1 set
        for line in range(4):
            c.install(line * 1)  # same set when num_sets==1
        c.lookup(0)  # refresh 0
        victim = c.install(100)
        assert victim is not None
        assert victim[0] == 1  # line 1 is now LRU

    def test_install_refreshes_existing(self):
        c = make_cache(lines=4, ways=4)
        for line in range(4):
            c.install(line)
        c.install(0, FLAG_DIRTY)  # re-install merges flags, refreshes
        victim = c.install(50)
        assert victim[0] == 1
        assert c.peek_flags(0) & FLAG_DIRTY

    def test_set_isolation(self):
        c = make_cache(lines=8, ways=2)  # 4 sets
        # lines 0,4,8,12 all map to set 0; line 1 to set 1
        c.install(0)
        c.install(4)
        victim = c.install(8)
        assert victim[0] == 0
        assert c.contains(1) is False
        c.install(1)
        assert c.contains(4) and c.contains(8) and c.contains(1)


class TestFlags:
    def test_lookup_merges_flags(self):
        c = make_cache()
        c.install(3, FLAG_SW_PREFETCH)
        c.lookup(3, FLAG_REFERENCED)
        assert c.peek_flags(3) == FLAG_SW_PREFETCH | FLAG_REFERENCED

    def test_touch_flags_does_not_refresh(self):
        c = make_cache(lines=4, ways=4)
        for line in range(4):
            c.install(line)
        assert c.touch_flags(0, FLAG_DIRTY)
        victim = c.install(50)
        assert victim[0] == 0  # still LRU despite touch
        assert victim[1] & FLAG_DIRTY

    def test_touch_flags_missing_line(self):
        assert make_cache().touch_flags(9, FLAG_DIRTY) is False

    def test_nta_flag_roundtrip(self):
        c = make_cache()
        c.install(7, FLAG_NTA)
        assert c.peek_flags(7) & FLAG_NTA

    def test_invalidate(self):
        c = make_cache()
        c.install(2, FLAG_DIRTY)
        assert c.invalidate(2) == FLAG_DIRTY
        assert not c.contains(2)
        assert c.invalidate(2) is None


class TestMaintenance:
    def test_flush(self):
        c = make_cache()
        for line in range(6):
            c.install(line)
        assert c.flush() == 6
        assert len(c) == 0

    def test_resident_lines(self):
        c = make_cache()
        for line in (1, 2, 3):
            c.install(line)
        assert sorted(c.resident_lines()) == [1, 2, 3]

    def test_invariants_hold_under_churn(self, rng):
        c = make_cache(lines=16, ways=4)
        for line in rng.integers(0, 100, size=2000).tolist():
            if not c.lookup(line):
                c.install(line)
        c.check_invariants()
        assert len(c) <= 16
