"""Tests for the reuse/stride sampling framework."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import (
    RuntimeSampler,
    collect_reuse_samples,
    collect_stride_samples,
    next_same_value_index,
)
from repro.trace import MemOp, MemoryTrace


class TestNextSameValue:
    def test_basic(self):
        values = np.array([5, 7, 5, 7, 9])
        nxt = next_same_value_index(values)
        assert nxt.tolist() == [2, 3, -1, -1, -1]

    def test_empty(self):
        assert len(next_same_value_index(np.array([], dtype=np.int64))) == 0

    def test_all_unique(self):
        assert next_same_value_index(np.arange(5)).tolist() == [-1] * 5

    def test_matches_naive(self, rng):
        values = rng.integers(0, 20, size=200)
        nxt = next_same_value_index(values)
        for i in range(200):
            expected = -1
            for j in range(i + 1, 200):
                if values[j] == values[i]:
                    expected = j
                    break
            assert nxt[i] == expected


class TestReuseSampling:
    def test_reuse_distance_semantics(self):
        # line 0 accessed at refs 0 and 3 -> two intervening refs
        t = MemoryTrace.loads([0, 1, 2, 3], [0, 64, 128, 0])
        samples = collect_reuse_samples(t, np.array([0]), 64)
        assert samples.distance.tolist() == [2]
        assert samples.end_pc.tolist() == [3]
        assert samples.start_pc.tolist() == [0]

    def test_dangling_sample(self):
        t = MemoryTrace.loads([0, 1], [0, 64])
        samples = collect_reuse_samples(t, np.array([0, 1]), 64)
        assert samples.n_dangling == 2
        assert np.all(samples.distance == -1)

    def test_same_line_different_addr(self):
        # 0 and 32 share a 64-byte line
        t = MemoryTrace.loads([0, 1], [0, 32])
        samples = collect_reuse_samples(t, np.array([0]), 64)
        assert samples.distance.tolist() == [0]

    def test_prefetches_invisible_to_sampler(self):
        t = MemoryTrace(
            [0, 0, 1], [0, 64, 0], [MemOp.LOAD, MemOp.PREFETCH, MemOp.LOAD]
        )
        samples = collect_reuse_samples(t, np.array([0]), 64)
        # prefetch is not a memory reference: distance 0, end pc 1
        assert samples.distance.tolist() == [0]
        assert samples.end_pc.tolist() == [1]

    def test_out_of_range_rejected(self):
        t = MemoryTrace.loads([0], [0])
        with pytest.raises(SamplingError):
            collect_reuse_samples(t, np.array([5]), 64)

    def test_merged_with(self):
        t = MemoryTrace.loads([0, 0], [0, 0])
        a = collect_reuse_samples(t, np.array([0]), 64)
        b = collect_reuse_samples(t, np.array([1]), 64)
        m = a.merged_with(b)
        assert len(m) == 2
        assert m.n_refs == 4


class TestStrideSampling:
    def test_stride_and_recurrence(self):
        # pc 0 executes at refs 0 and 2 with addresses 0 and 16
        t = MemoryTrace.loads([0, 1, 0], [0, 500, 16])
        samples = collect_stride_samples(t, np.array([0]))
        assert samples.stride.tolist() == [16]
        assert samples.recurrence.tolist() == [1]

    def test_no_reexecution_no_sample(self):
        t = MemoryTrace.loads([0, 1], [0, 64])
        samples = collect_stride_samples(t, np.array([0]))
        assert len(samples) == 0

    def test_negative_stride(self):
        t = MemoryTrace.loads([0, 0], [100, 36])
        samples = collect_stride_samples(t, np.array([0]))
        assert samples.stride.tolist() == [-64]

    def test_for_pc(self):
        t = MemoryTrace.loads([0, 1, 0, 1], [0, 0, 8, 32])
        samples = collect_stride_samples(t, np.array([0, 1]))
        strides, recurrences = samples.for_pc(1)
        assert strides.tolist() == [32]


class TestRuntimeSampler:
    def test_deterministic(self):
        t = MemoryTrace.loads(np.zeros(5000, np.int64), np.arange(5000) * 8)
        r1 = RuntimeSampler(rate=0.01, seed=3).sample(t)
        r2 = RuntimeSampler(rate=0.01, seed=3).sample(t)
        assert np.array_equal(r1.reuse.distance, r2.reuse.distance)
        assert np.array_equal(r1.strides.stride, r2.strides.stride)

    def test_min_samples_fallback(self):
        t = MemoryTrace.loads(np.zeros(1000, np.int64), np.arange(1000) * 8)
        r = RuntimeSampler(rate=1e-9, seed=0, min_samples=32).sample(t)
        assert len(r.reuse) == 32

    def test_stride_detected_on_stream(self):
        t = MemoryTrace.loads(np.zeros(10_000, np.int64), np.arange(10_000) * 16)
        r = RuntimeSampler(rate=0.02, seed=1).sample(t)
        assert np.all(r.strides.stride == 16)

    def test_overhead_estimate_reasonable_at_paper_rate(self):
        t = MemoryTrace.loads(np.zeros(200_000, np.int64), np.arange(200_000) * 8)
        sampler = RuntimeSampler(rate=1e-5, seed=0, min_samples=0)
        r = sampler.sample(t)
        # paper: reuse+stride sampling stays under 30 % overhead
        assert r.overhead_estimate < 0.30

    def test_invalid_rate(self):
        with pytest.raises(SamplingError):
            RuntimeSampler(rate=0.0)
        with pytest.raises(SamplingError):
            RuntimeSampler(rate=1.5)

    def test_describe(self):
        t = MemoryTrace.loads(np.zeros(100, np.int64), np.arange(100) * 8)
        r = RuntimeSampler(rate=0.5, seed=0).sample(t)
        assert "reuse samples" in r.describe()
