"""Tests for the timed cache hierarchy."""

import numpy as np
import pytest

from repro.cachesim import BandwidthModel, CacheHierarchy
from repro.errors import SimulationError
from repro.hwpref import PCStridePrefetcher
from repro.trace import MemOp, MemoryTrace


def loads(addrs, pc=0):
    return MemoryTrace.loads([pc] * len(addrs), addrs)


class TestDemandPath:
    def test_cold_misses_fill_all_levels(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        t = loads([0, 64, 128])
        s = h.run(t)
        assert s.l1.misses == 3
        assert s.llc.misses == 3
        assert s.dram_fills == 3
        assert h.l1.contains(0) and h.l2.contains(0) and h.llc.contains(0)

    def test_l1_hit_on_reuse(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        s = h.run(loads([0, 0, 0]))
        assert s.l1.misses == 1
        assert s.l1.accesses == 3

    def test_l2_service_after_l1_eviction(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        # L1 = 16 lines 2-way (8 sets); lines 0,8,16 map to set 0
        s = h.run(loads([0, 8 * 64, 16 * 64, 0]))
        # final access to 0: evicted from L1 (3 lines in set 0), hits L2
        assert s.l2.accesses >= 1
        assert s.dram_fills == 3

    def test_cycles_monotonic_with_misses(self, tiny_machine):
        h1 = CacheHierarchy(tiny_machine)
        hits = h1.run(loads([0] * 100))
        h2 = CacheHierarchy(tiny_machine)
        misses = h2.run(loads([i * 64 for i in range(100)]))
        assert misses.cycles > hits.cycles

    def test_store_marks_dirty_and_drains(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        t = MemoryTrace([0], [0], [MemOp.STORE])
        s = h.run(t)
        assert s.dram_writebacks == 0
        h.drain_writebacks(s)
        assert s.dram_writebacks == 1

    def test_drain_counts_each_dirty_line_once(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        t = MemoryTrace([0, 0], [0, 0], [MemOp.STORE, MemOp.STORE])
        s = h.run(t)
        h.drain_writebacks(s)
        assert s.dram_writebacks == 1

    def test_mlp_reduces_stalls(self, tiny_machine):
        t = loads([i * 64 for i in range(200)])
        slow = CacheHierarchy(tiny_machine).run(t, mlp=1.0)
        fast = CacheHierarchy(tiny_machine).run(t, mlp=8.0)
        assert fast.cycles < slow.cycles

    def test_bad_mlp_rejected(self, tiny_machine):
        with pytest.raises(SimulationError):
            CacheHierarchy(tiny_machine).run(loads([0]), mlp=0.5)

    def test_bad_work_rejected(self, tiny_machine):
        with pytest.raises(SimulationError):
            CacheHierarchy(tiny_machine).run(loads([0]), work_per_memop=-1)

    def test_per_pc_stats(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        t = MemoryTrace([0, 1, 0], [0, 64, 0], [0, 0, 0])
        s = h.run(t)
        assert s.pc_l1.accesses == {0: 2, 1: 1}
        assert s.pc_l1.misses == {0: 1, 1: 1}


class TestSoftwarePrefetch:
    def _trace_with_prefetch(self, distance=192, nta=False, n=200):
        """Stride-64 loads, each preceded by a prefetch `distance` ahead."""
        pcs, addrs, ops = [], [], []
        op = MemOp.PREFETCH_NTA if nta else MemOp.PREFETCH
        for i in range(n):
            pcs += [0, 0]
            addrs += [i * 64 + distance, i * 64]
            ops += [op, MemOp.LOAD]
        return MemoryTrace(pcs, addrs, ops)

    def test_timely_prefetch_removes_misses(self, tiny_machine):
        t = self._trace_with_prefetch()
        s = CacheHierarchy(tiny_machine).run(t, work_per_memop=20.0)
        # after the warmup window, demand accesses hit
        assert s.l1.misses < 25
        assert s.sw_useful > 150

    def test_prefetch_speeds_up(self, tiny_machine):
        base = CacheHierarchy(tiny_machine).run(
            loads([i * 64 for i in range(200)]), work_per_memop=20.0
        )
        pf = CacheHierarchy(tiny_machine).run(
            self._trace_with_prefetch(), work_per_memop=20.0
        )
        assert pf.cycles < base.cycles

    def test_late_prefetch_counted(self, tiny_machine):
        # distance 64 = 1 line ahead -> prefetch completes after demand
        t = self._trace_with_prefetch(distance=64)
        s = CacheHierarchy(tiny_machine).run(t, work_per_memop=0.0)
        assert s.sw_late > 0

    def test_nta_bypasses_outer_levels(self, tiny_machine):
        t = self._trace_with_prefetch(nta=True)
        h = CacheHierarchy(tiny_machine)
        s = h.run(t, work_per_memop=20.0)
        # NTA-prefetched lines must never be installed in L2/LLC by the
        # prefetch itself; L2 contents stem only from demand misses.
        assert s.l1.misses < 25
        demand_missed_lines = s.l1.misses
        assert len(h.l2) <= demand_missed_lines

    def test_useless_prefetch_counted(self, tiny_machine):
        # prefetch lines that are never demanded, far apart
        pcs, addrs, ops = [], [], []
        for i in range(64):
            pcs += [0, 0]
            addrs += [1 << 20 | (i * 64 * 16), i * 64]
            ops += [MemOp.PREFETCH, MemOp.LOAD]
        s = CacheHierarchy(tiny_machine).run(MemoryTrace(pcs, addrs, ops))
        assert s.sw_useless > 0
        assert s.prefetch_accuracy() < 1.0

    def test_prefetch_instruction_cost_charged(self, tiny_machine):
        t_pf = MemoryTrace([0, 0], [64, 0], [MemOp.PREFETCH, MemOp.LOAD])
        t_plain = MemoryTrace([0], [0], [MemOp.LOAD])
        c_pf = CacheHierarchy(tiny_machine).run(t_pf)
        c_plain = CacheHierarchy(tiny_machine).run(t_plain)
        assert c_pf.cycles > c_plain.cycles


class TestHardwarePrefetch:
    def test_stride_prefetcher_reduces_misses(self, tiny_machine):
        pf = PCStridePrefetcher(degree=2, distance_lines=2)
        t = loads([i * 64 for i in range(300)])
        base = CacheHierarchy(tiny_machine).run(t, work_per_memop=20.0)
        hw = CacheHierarchy(tiny_machine, prefetcher=pf).run(t, work_per_memop=20.0)
        assert hw.hw_prefetches > 0
        assert hw.cycles < base.cycles

    def test_hw_prefetch_traffic_counted(self, tiny_machine):
        pf = PCStridePrefetcher(degree=4, distance_lines=4)
        # short bursts: overshoot wastes fetches
        addrs = []
        for b in range(40):
            addrs += [b * 1 << 16 | (k * 64) for k in range(4)]
        t = loads(addrs)
        base = CacheHierarchy(tiny_machine).run(t)
        hw = CacheHierarchy(tiny_machine, prefetcher=pf).run(t)
        assert hw.dram_fills > base.dram_fills
        assert hw.hw_useless > 0


class TestSharedState:
    def test_shared_bandwidth_model(self, tiny_machine):
        bw = BandwidthModel(tiny_machine.bytes_per_cycle())
        h1 = CacheHierarchy(tiny_machine, bandwidth=bw)
        h2 = CacheHierarchy(tiny_machine, bandwidth=bw)
        h1.run(loads([i * 64 for i in range(10)]))
        h2.run(loads([(1 << 20) + i * 64 for i in range(10)]))
        assert bw.total_bytes == 20 * 64

    def test_reset(self, tiny_machine):
        h = CacheHierarchy(tiny_machine)
        h.run(loads([0, 64]))
        h.reset()
        assert h.now == 0.0
        assert len(h.l1) == 0 and len(h.llc) == 0
