"""Tests for the durable run journal (write-ahead log).

Covers the checksummed line codec, torn-tail tolerance (the killed-writer
signature), corrupt-interior accounting, replay/resume semantics, the
duplicate-suppression ``done`` set, and the injected fault points
(``journal.partial_append``, ``disk.enospc``).
"""

import json
import zlib

import pytest

from repro import faults
from repro.api import ExperimentSpec
from repro.core import serialization
from repro.errors import ExperimentError
from repro.experiments.journal import (
    JOURNAL_FORMAT,
    JournalError,
    RunJournal,
    _decode,
    _encode,
    list_runs,
    new_run_id,
    replay_journal,
)
from repro.experiments.runner import compute_run

SCALE = 0.05
SPECS = [
    ExperimentSpec("libquantum", "amd-phenom-ii", c, scale=SCALE)
    for c in ("baseline", "swnt")
]


@pytest.fixture(autouse=True)
def _disarm_after():
    faults.disarm()
    yield
    faults.disarm()


def _journaled_run(tmp_path, specs=SPECS, finish=True):
    """Write a complete journal for ``specs`` and return (journal, stats)."""
    journal = RunJournal.create(run_id="test-run", runs_dir=tmp_path)
    journal.start(specs)
    stats = {}
    for spec in specs:
        stats[spec] = compute_run(spec)
        journal.record_dispatch([spec])
        journal.record_cell(spec, stats[spec], "computed")
    if finish:
        journal.finish(cells=len(specs))
    journal.close()
    return journal, stats


class TestLineCodec:
    def test_round_trip(self):
        record = {"type": "cell.done", "n": 3, "x": [1.5, "a"]}
        line = _encode(record)
        assert line.endswith(b"\n")
        assert _decode(line) == record

    def test_crc_mismatch_rejected(self):
        line = bytearray(_encode({"type": "run.end"}))
        line[-2] ^= 0x01  # flip one payload bit
        assert _decode(bytes(line)) is None

    def test_garbage_and_short_lines_rejected(self):
        assert _decode(b"") is None
        assert _decode(b"nonsense") is None
        assert _decode(b"zzzzzzzz {}") is None  # non-hex checksum
        # valid CRC over non-dict JSON is still rejected
        body = b"[1,2]"
        crc = zlib.crc32(body) & 0xFFFFFFFF
        assert _decode(b"%08x " % crc + body) is None

    def test_canonical_encoding_is_stable(self):
        a = _encode({"b": 1, "a": 2})
        b = _encode({"a": 2, "b": 1})
        assert a == b


class TestReplay:
    def test_full_run_replays_to_results(self, tmp_path):
        journal, stats = _journaled_run(tmp_path)
        replay = replay_journal(journal.path, "test-run")
        assert replay.run_id == "test-run"
        assert replay.specs == SPECS
        assert replay.finished
        assert not replay.torn_tail
        assert replay.corrupt_records == 0
        assert replay.pending == []
        for spec in SPECS:
            assert replay.completed[spec] == serialization.stats_to_dict(stats[spec])

    def test_partial_run_reports_pending(self, tmp_path):
        journal = RunJournal.create(run_id="partial", runs_dir=tmp_path)
        journal.start(SPECS)
        journal.record_cell(SPECS[0], compute_run(SPECS[0]), "computed")
        journal.close()
        replay = replay_journal(journal.path, "partial")
        assert not replay.finished
        assert replay.pending == [SPECS[1]]

    def test_torn_tail_tolerated(self, tmp_path):
        journal, _ = _journaled_run(tmp_path, finish=False)
        raw = journal.path.read_bytes()
        # Tear the last record mid-line, as a killed writer would.
        lines = raw.rstrip(b"\n").split(b"\n")
        torn = b"\n".join(lines[:-1]) + b"\n" + lines[-1][: len(lines[-1]) // 2]
        journal.path.write_bytes(torn)
        replay = replay_journal(journal.path, "test-run")
        assert replay.torn_tail
        assert replay.corrupt_records == 0
        # the torn record (second cell) is simply not trusted
        assert replay.pending == [SPECS[1]]

    def test_corrupt_interior_record_skipped_and_counted(self, tmp_path):
        journal, _ = _journaled_run(tmp_path)
        lines = journal.path.read_bytes().rstrip(b"\n").split(b"\n")
        lines[2] = b"0badc0de " + lines[2][9:]  # clobber one interior checksum
        journal.path.write_bytes(b"\n".join(lines) + b"\n")
        replay = replay_journal(journal.path, "test-run")
        assert replay.corrupt_records == 1
        assert not replay.torn_tail
        assert replay.finished  # the rest of the journal still replays

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            replay_journal(tmp_path / "nope" / "journal.jsonl")

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {
            "type": "run.start",
            "format": "repro-journal-v999",
            "run_id": "x",
            "specs": [],
        }
        path.write_bytes(_encode(record))
        with pytest.raises(JournalError, match="format"):
            replay_journal(path)

    def test_wrong_stats_format_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {
            "type": "run.start",
            "format": JOURNAL_FORMAT,
            "stats_format": "repro-stats-v999",
            "run_id": "x",
            "specs": [s.as_dict() for s in SPECS],
        }
        path.write_bytes(_encode(record))
        with pytest.raises(JournalError, match="stats format"):
            replay_journal(path)

    def test_journal_without_start_record_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(_encode({"type": "run.end", "cells": 0}))
        with pytest.raises(JournalError, match="run.start"):
            replay_journal(path)


class TestRunJournal:
    def test_create_refuses_existing_run(self, tmp_path):
        RunJournal.create(run_id="dup", runs_dir=tmp_path).start(SPECS)
        with pytest.raises(JournalError, match="already"):
            RunJournal.create(run_id="dup", runs_dir=tmp_path)

    def test_open_missing_run_names_known_runs(self, tmp_path):
        _journaled_run(tmp_path)
        with pytest.raises(JournalError, match="test-run"):
            RunJournal.open("absent", runs_dir=tmp_path)

    def test_open_seeds_done_set_and_suppresses_duplicates(self, tmp_path):
        _, stats = _journaled_run(tmp_path, finish=False)
        journal, replay = RunJournal.open("test-run", runs_dir=tmp_path)
        assert journal.done == set(SPECS)
        before = journal.path.stat().st_size
        journal.record_cell(SPECS[0], stats[SPECS[0]], "memo")
        assert journal.skipped == 1
        assert journal.path.stat().st_size == before  # nothing appended
        journal.close()

    def test_append_after_torn_tail_stays_parseable(self, tmp_path):
        journal, stats = _journaled_run(tmp_path, finish=False)
        raw = journal.path.read_bytes()
        journal.path.write_bytes(raw[:-3])  # tear the final line
        reopened, replay = RunJournal.open("test-run", runs_dir=tmp_path)
        assert replay.torn_tail
        missing = replay.pending[0]
        reopened.record_cell(missing, stats[missing], "computed")
        reopened.close()
        healed = replay_journal(journal.path, "test-run")
        assert healed.pending == []
        assert not healed.torn_tail

    def test_partial_append_fault_tears_record(self, tmp_path):
        faults.arm(
            "journal.partial_append",
            kind="corrupt",
            match=lambda kind: kind == "cell.done",
            times=1,
        )
        journal = RunJournal.create(run_id="torn", runs_dir=tmp_path)
        journal.start(SPECS)
        stats = compute_run(SPECS[0])
        journal.record_cell(SPECS[0], stats, "computed")  # torn mid-line
        journal.record_cell(SPECS[1], compute_run(SPECS[1]), "computed")
        journal.close()
        replay = replay_journal(journal.path, "torn")
        # the torn record is lost (counted), the next one survives
        assert replay.corrupt_records == 1
        assert SPECS[0] not in replay.completed
        assert SPECS[1] in replay.completed

    def test_enospc_degrades_journal_to_read_only(self, tmp_path):
        faults.arm("disk.enospc", kind="enospc")
        journal = RunJournal.create(run_id="full-disk", runs_dir=tmp_path)
        journal.start(SPECS)  # must not raise
        journal.record_cell(SPECS[0], compute_run(SPECS[0]), "computed")
        assert journal.broken
        assert journal.write_errors == 2
        assert journal.appended == 0
        journal.close()

    def test_write_seconds_accumulates(self, tmp_path):
        journal, _ = _journaled_run(tmp_path)
        assert journal.write_seconds > 0.0
        assert journal.appended == len(SPECS) * 2 + 2  # start+end+dispatch+done

    def test_fsync_false_still_durable_format(self, tmp_path):
        journal = RunJournal.create(run_id="nofsync", runs_dir=tmp_path, fsync=False)
        journal.start(SPECS)
        journal.record_cell(SPECS[0], compute_run(SPECS[0]), "computed")
        journal.close()
        replay = replay_journal(journal.path, "nofsync")
        assert SPECS[0] in replay.completed


class TestListRuns:
    def test_lists_only_journaled_dirs(self, tmp_path):
        _journaled_run(tmp_path)
        (tmp_path / "not-a-run").mkdir()
        assert list_runs(tmp_path) == ["test-run"]

    def test_missing_root_is_empty(self, tmp_path):
        assert list_runs(tmp_path / "nope") == []

    def test_new_run_ids_are_unique(self):
        assert new_run_id() != new_run_id()


class TestSpecRoundTrip:
    def test_spec_survives_journal_round_trip(self, tmp_path):
        spec = ExperimentSpec("mcf", "intel-i7", "hwsw", "train", 0.25)
        journal = RunJournal.create(run_id="spec-rt", runs_dir=tmp_path)
        journal.start([spec])
        journal.close()
        replay = replay_journal(journal.path, "spec-rt")
        assert replay.specs == [spec]

    def test_unusable_spec_list_rejected(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        record = {
            "type": "run.start",
            "format": JOURNAL_FORMAT,
            "stats_format": serialization.STATS_FORMAT,
            "run_id": "x",
            "specs": [{"bogus_field": 1}],
        }
        path.write_bytes(_encode(record))
        with pytest.raises((JournalError, ExperimentError)):
            replay_journal(path)
