"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.lru import LRUCache
from repro.cachesim.stats import PCStats
from repro.config import CacheConfig
from repro.core.report import PrefetchDecision
from repro.core.insertion import apply_prefetch_plan
from repro.sampling.reuse import collect_reuse_samples, next_same_value_index
from repro.statstack.model import StatStackModel
from repro.trace.events import MemoryTrace
from repro.trace.synthesis import strided_pattern, sweep_pattern

lines = st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=400)


class TestLRUProperties:
    @given(lines, st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_any_access_sequence(self, accesses, ways):
        cache = LRUCache(CacheConfig("T", 16 * 64 * ways // ways * ways, ways=ways))
        for line in accesses:
            if not cache.lookup(line):
                cache.install(line)
        cache.check_invariants()
        assert len(cache) <= cache.config.num_lines

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_inclusion_monotonicity(self, accesses):
        """A bigger fully-associative LRU cache never misses more.

        Classic stack property of LRU — the basis of stack-distance
        analysis and therefore of StatStack itself.
        """
        small = LRUCache(CacheConfig("S", 8 * 64, ways=8))
        large = LRUCache(CacheConfig("L", 32 * 64, ways=32))
        misses_small = misses_large = 0
        for line in accesses:
            if not small.lookup(line):
                misses_small += 1
                small.install(line)
            if not large.lookup(line):
                misses_large += 1
                large.install(line)
        assert misses_large <= misses_small

    @given(lines)
    @settings(max_examples=40, deadline=None)
    def test_resident_set_is_most_recent(self, accesses):
        cache = LRUCache(CacheConfig("T", 8 * 64, ways=8))  # fully assoc
        for line in accesses:
            if not cache.lookup(line):
                cache.install(line)
        # the residents are exactly the most recently used distinct lines
        distinct_recent: list[int] = []
        for line in reversed(accesses):
            if line not in distinct_recent:
                distinct_recent.append(line)
            if len(distinct_recent) == 8:
                break
        assert set(cache.resident_lines()) == set(distinct_recent)


class TestNextSameValueProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_scan(self, values):
        arr = np.asarray(values, dtype=np.int64)
        nxt = next_same_value_index(arr)
        for i, v in enumerate(values):
            expected = -1
            for j in range(i + 1, len(values)):
                if values[j] == v:
                    expected = j
                    break
            assert nxt[i] == expected


class TestStatStackProperties:
    @given(
        st.integers(min_value=2, max_value=64),
        st.integers(min_value=500, max_value=4000),
    )
    @settings(max_examples=25, deadline=None)
    def test_miss_ratio_monotone_and_bounded(self, wrap_lines, n):
        addr = strided_pattern(0, n, 64, wrap_bytes=wrap_lines * 64)
        t = MemoryTrace.loads(np.zeros(n, np.int64), addr)
        samples = collect_reuse_samples(t, np.arange(n), 64)
        model = StatStackModel(samples)
        sizes = [64, 512, 4096, 65536, 1 << 20]
        ratios = [model.miss_ratio(s) for s in sizes]
        assert all(0.0 <= r <= 1.0 for r in ratios)
        assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:]))

    @given(st.integers(min_value=1, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_stack_distance_never_exceeds_reuse_distance(self, d):
        n = 2000
        addr = strided_pattern(0, n, 64, wrap_bytes=1 << 16)
        t = MemoryTrace.loads(np.zeros(n, np.int64), addr)
        samples = collect_reuse_samples(t, np.arange(n), 64)
        model = StatStackModel(samples)
        sd = model.expected_stack_distance(np.array([d]))[0]
        assert 0.0 <= sd <= d + 1e-9


class TestInsertionProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=1 << 20),
            ),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=-512, max_value=512).filter(lambda d: d != 0),
    )
    @settings(max_examples=60, deadline=None)
    def test_demand_stream_preserved(self, events, distance):
        pcs = [e[0] for e in events]
        addrs = [e[1] for e in events]
        trace = MemoryTrace.loads(pcs, addrs)
        plan = [PrefetchDecision(pc=0, stride=8, distance_bytes=distance, nta=False)]
        out = apply_prefetch_plan(trace, plan)
        assert out.demand_only() == trace
        # every prefetch's address is its predecessor's plus the distance
        pf_positions = np.flatnonzero(out.prefetch_mask)
        for pos in pf_positions.tolist():
            assert out.addr[pos] == out.addr[pos - 1] + distance
            assert out.pc[pos] == out.pc[pos - 1] == 0

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=100)
    )
    @settings(max_examples=40, deadline=None)
    def test_prefetch_count_matches_target_executions(self, pcs):
        trace = MemoryTrace.loads(pcs, [64 * (i + 8) for i in range(len(pcs))])
        plan = [PrefetchDecision(pc=1, stride=8, distance_bytes=64, nta=True)]
        out = apply_prefetch_plan(trace, plan)
        assert out.n_prefetch == pcs.count(1)


class TestPCStatsProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.booleans()), min_size=1, max_size=300
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_bulk_equals_sequential(self, records):
        seq = PCStats()
        for pc, miss in records:
            seq.record(pc, miss)
        bulk = PCStats()
        bulk.record_bulk(
            np.array([r[0] for r in records]),
            np.array([r[1] for r in records]),
        )
        assert seq.accesses == bulk.accesses
        assert seq.misses == bulk.misses
        assert 0.0 <= bulk.overall_miss_ratio() <= 1.0


class TestSweepProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=50, deadline=None)
    def test_sweep_addresses_within_largest_pass(self, pass_lines, n):
        passes = tuple(p * 64 for p in pass_lines)
        addr = sweep_pattern(0, n, passes, 64)
        assert len(addr) == n
        assert addr.min() >= 0
        assert addr.max() < max(passes)
        assert np.all(addr % 64 == 0)
