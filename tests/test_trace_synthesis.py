"""Tests for synthetic address-pattern generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.synthesis import (
    burst_strided_pattern,
    chase_pattern,
    gather_pattern,
    random_pattern,
    stream_pattern,
    strided_pattern,
    sweep_pattern,
)


class TestStream:
    def test_sequence(self):
        assert stream_pattern(100, 4, 8).tolist() == [100, 108, 116, 124]

    def test_empty(self):
        assert len(stream_pattern(0, 0)) == 0

    def test_bad_elem(self):
        with pytest.raises(TraceError):
            stream_pattern(0, 4, 0)

    def test_negative_count(self):
        with pytest.raises(TraceError):
            stream_pattern(0, -1)


class TestStrided:
    def test_wrap(self):
        a = strided_pattern(0, 6, 16, wrap_bytes=48)
        assert a.tolist() == [0, 16, 32, 0, 16, 32]

    def test_negative_stride(self):
        a = strided_pattern(1000, 3, -8)
        assert a.tolist() == [1000, 992, 984]

    def test_zero_stride_rejected(self):
        with pytest.raises(TraceError):
            strided_pattern(0, 4, 0)

    def test_bad_wrap(self):
        with pytest.raises(TraceError):
            strided_pattern(0, 4, 8, wrap_bytes=0)


class TestChase:
    def test_visits_all_nodes_before_repeat(self, rng):
        a = chase_pattern(rng, 0, 10, 10, node_bytes=64)
        assert len(set(a.tolist())) == 10

    def test_wraps_deterministically(self, rng):
        a = chase_pattern(rng, 0, 5, 10, node_bytes=64)
        assert a[:5].tolist() == a[5:].tolist()

    def test_alignment(self, rng):
        a = chase_pattern(rng, 128, 16, 50, node_bytes=64)
        assert np.all((a - 128) % 64 == 0)

    def test_no_dominant_stride(self, rng):
        a = chase_pattern(rng, 0, 4096, 4000, node_bytes=64)
        strides = np.diff(a)
        _, counts = np.unique(strides // 64, return_counts=True)
        assert counts.max() / len(strides) < 0.2

    def test_bad_nodes(self, rng):
        with pytest.raises(TraceError):
            chase_pattern(rng, 0, 0, 5)


class TestRandom:
    def test_bounds_and_alignment(self, rng):
        a = random_pattern(rng, 1000, 4096, 500, align=8)
        assert a.min() >= 1000
        assert a.max() < 1000 + 4096
        assert np.all((a - 1000) % 8 == 0)

    def test_bad_region(self, rng):
        with pytest.raises(TraceError):
            random_pattern(rng, 0, 0, 5)


class TestGather:
    def test_bounds(self, rng):
        a = gather_pattern(rng, 0, 8192, 1000, locality=0.5)
        assert a.min() >= 0 and a.max() < 8192

    def test_zero_length(self, rng):
        assert len(gather_pattern(rng, 0, 8192, 0)) == 0

    def test_locality_raises_line_reuse(self, rng):
        lo = gather_pattern(rng, 0, 1 << 20, 4000, locality=0.0)
        hi = gather_pattern(rng, 0, 1 << 20, 4000, locality=0.9)
        # high locality -> consecutive accesses land on the same line far
        # more often
        same_lo = np.mean(np.diff(lo // 64) == 0)
        same_hi = np.mean(np.diff(hi // 64) == 0)
        assert same_hi > same_lo + 0.2

    def test_bad_locality(self, rng):
        with pytest.raises(TraceError):
            gather_pattern(rng, 0, 4096, 10, locality=1.0)


class TestBurst:
    def test_intra_burst_stride(self, rng):
        a = burst_strided_pattern(rng, 0, 1 << 20, 64, burst_len=8, stride_bytes=32)
        d = np.diff(a)
        # within bursts the stride is exact
        within = d.reshape(-1)[: 7]
        assert np.all(within[:7] == 32)

    def test_dominance_matches_burst_len(self, rng):
        a = burst_strided_pattern(rng, 0, 8 << 20, 6000, burst_len=6, stride_bytes=32)
        d = np.diff(a)
        dominance = np.mean(d == 32)
        assert 0.7 < dominance < 0.9  # 5 of 6 strides are regular

    def test_bounds(self, rng):
        a = burst_strided_pattern(rng, 500, 1 << 16, 1000, burst_len=4, stride_bytes=16)
        assert a.min() >= 500
        assert a.max() < 500 + (1 << 16)

    def test_region_too_small(self, rng):
        with pytest.raises(TraceError):
            burst_strided_pattern(rng, 0, 100, 10, burst_len=10, stride_bytes=32)


class TestSweep:
    def test_pass_cycling(self):
        a = sweep_pattern(0, 6, (128, 256), stride_bytes=64)
        # pass 1: 2 lines; pass 2: 4 lines
        assert a.tolist() == [0, 64, 0, 64, 128, 192]

    def test_nested_reuse(self):
        a = sweep_pattern(0, 12, (128, 256), stride_bytes=64)
        # the short pass's lines are re-touched every cycle
        assert a.tolist().count(0) == 4

    def test_empty_passes_rejected(self):
        with pytest.raises(TraceError):
            sweep_pattern(0, 5, ())

    def test_pass_smaller_than_stride_rejected(self):
        with pytest.raises(TraceError):
            sweep_pattern(0, 5, (32,), stride_bytes=64)

    def test_deterministic(self):
        a = sweep_pattern(0, 100, (256, 512), 64)
        b = sweep_pattern(0, 100, (256, 512), 64)
        assert np.array_equal(a, b)
