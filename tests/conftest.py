"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheConfig, MachineConfig, amd_phenom_ii, intel_i7_2600k


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def amd() -> MachineConfig:
    return amd_phenom_ii()


@pytest.fixture
def intel() -> MachineConfig:
    return intel_i7_2600k()


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A miniature machine so tests exercise evictions with short traces."""
    return MachineConfig(
        name="tiny",
        l1=CacheConfig("L1", 1024, ways=2, line_bytes=64, hit_latency=2),
        l2=CacheConfig("L2", 4096, ways=4, line_bytes=64, hit_latency=8),
        llc=CacheConfig("LLC", 16384, ways=8, line_bytes=64, hit_latency=20),
        cores=4,
        freq_ghz=1.0,
        dram_latency=100,
        peak_bandwidth_gbs=8.0,
        prefetch_cost=1.0,
        cpi_base=0.5,
        cycles_per_memop=2.0,
    )
