"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CacheConfig, MachineConfig, amd_phenom_ii, intel_i7_2600k


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the default persistent cache at a per-session temp dir.

    CLI commands enable the disk cache by default; without this, test
    runs would litter the working directory with ``.repro-cache`` and —
    worse — later runs could replay results cached by an older build.
    """
    import os

    from repro.cache import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def amd() -> MachineConfig:
    return amd_phenom_ii()


@pytest.fixture
def intel() -> MachineConfig:
    return intel_i7_2600k()


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A miniature machine so tests exercise evictions with short traces."""
    return MachineConfig(
        name="tiny",
        l1=CacheConfig("L1", 1024, ways=2, line_bytes=64, hit_latency=2),
        l2=CacheConfig("L2", 4096, ways=4, line_bytes=64, hit_latency=8),
        llc=CacheConfig("LLC", 16384, ways=8, line_bytes=64, hit_latency=20),
        cores=4,
        freq_ghz=1.0,
        dram_latency=100,
        peak_bandwidth_gbs=8.0,
        prefetch_cost=1.0,
        cpi_base=0.5,
        cycles_per_memop=2.0,
    )
