"""Tests for the advisor daemon (`repro.serve`).

Covers the wire protocol, tenancy isolation, the sharded engine pool,
and — through a real daemon on a unix socket — the concurrency
contract: N clients across mixed tenants, backpressure rejection when
the intake queue is full, byte-identical responses between the serve
path and the one-shot :func:`repro.api.advise`, and graceful drain on
shutdown/SIGTERM.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import socket as socket_module
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import AdvisorRequest, AdvisorResponse, advise
from repro.cache import ResultCache
from repro.errors import ExperimentError
from repro.serve import protocol
from repro.serve.advisor import compute_advice, trace_profile_seed
from repro.serve.client import AdvisorClient
from repro.serve.daemon import AdvisorServer, ServeOptions
from repro.serve.pool import EnginePool, shard_for
from repro.serve.tenancy import TenantCaches

SCALE = 0.05

#: A small strided trace: enough events for the sampler to catch a few.
TRACE = tuple(
    (0x1000 + 4 * (i % 7), 0x100000 + 64 * i, 0) for i in range(400)
)


def trace_request(**overrides) -> AdvisorRequest:
    fields = dict(trace=TRACE, config="swnt", want_stats=False)
    fields.update(overrides)
    return AdvisorRequest(**fields)


def workload_request(**overrides) -> AdvisorRequest:
    fields = dict(workload="libquantum", config="swnt", scale=SCALE)
    fields.update(overrides)
    return AdvisorRequest(**fields)


def entry_count(cache: ResultCache) -> int:
    return sum(b["entries"] for b in cache.entry_stats()["kinds"].values())


# ---------------------------------------------------------------------------
# wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_encoding_is_canonical(self):
        # Key order in the input dict must not matter.
        a = protocol.encode_message({"kind": "event", "event": "x", "n": 1})
        b = protocol.encode_message({"n": 1, "event": "x", "kind": "event"})
        assert a == b
        assert a.endswith(b"\n")
        assert b" " not in a  # compact separators

    def test_hello_declares_protocol_and_limits(self):
        hello = protocol.decode_line(
            protocol.encode_hello(queue_capacity=7, batch_max=3)
        )
        assert hello["protocol"] == "repro-advisor-v1"
        assert hello["queue_capacity"] == 7
        assert hello["batch_max"] == 3

    def test_request_round_trip(self):
        request = trace_request(tenant="acme", request_id="r-1", stream=True)
        payload = protocol.decode_line(protocol.encode_request(request))
        assert payload["kind"] == "request"
        assert protocol.decode_request(payload) == request

    def test_response_round_trip_bytes(self):
        response = AdvisorResponse(status="ok", request_id="r-2", spec={"a": 1})
        line = protocol.encode_response(response)
        payload = protocol.decode_line(line)
        assert payload["kind"] == "response"
        # Canonical encoding: re-encoding the decoded payload is stable.
        assert protocol.encode_message(payload) == line

    def test_decode_line_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError, match="invalid JSON"):
            protocol.decode_line(b"not json\n")
        with pytest.raises(protocol.ProtocolError, match="JSON objects"):
            protocol.decode_line(b"[1,2,3]\n")
        with pytest.raises(protocol.ProtocolError, match="unknown message kind"):
            protocol.decode_line(b'{"kind":"teapot"}\n')
        with pytest.raises(protocol.ProtocolError, match="exceeds"):
            protocol.decode_line(b"x" * (protocol.MAX_LINE_BYTES + 1))

    def test_decode_request_wraps_validation_errors(self):
        payload = protocol.decode_line(
            protocol.encode_request(trace_request())
        )
        payload["tenant"] = "quarantine"  # reserved name
        with pytest.raises(protocol.ProtocolError, match="invalid request"):
            protocol.decode_request(payload)


# ---------------------------------------------------------------------------
# tenancy
# ---------------------------------------------------------------------------


class TestTenancy:
    def test_tenant_view_is_namespaced(self, tmp_path):
        parent = ResultCache(tmp_path)
        view = parent.tenant_view("acme")
        assert view.root == tmp_path / "tenants" / "acme"
        with pytest.raises(ExperimentError, match="reserved"):
            parent.tenant_view("stats")
        with pytest.raises(ExperimentError, match="invalid tenant"):
            parent.tenant_view("../escape")

    def test_tenant_entries_invisible_to_parent(self, tmp_path):
        parent = ResultCache(tmp_path)
        view = parent.tenant_view("acme")
        assert view._write("stats", "aabbccdd", {"value": 1})
        assert entry_count(parent) == 0
        assert entry_count(view) == 1
        assert parent.tenants() == ["acme"]

    def test_tenant_caches_reuse_views(self, tmp_path):
        caches = TenantCaches(tmp_path)
        assert caches.get("a") is caches.get("a")
        assert caches.get("a") is not caches.get("b")
        assert caches.known() == ["a", "b"]

    def test_quota_eviction_stays_per_tenant(self, tmp_path):
        caches = TenantCaches(tmp_path, quota_bytes=1)
        hog, neighbour = caches.get("hog"), caches.get("neighbour")
        for i in range(3):
            assert hog._write("stats", f"aa{i:06d}", {"payload": "x" * 64})
        assert neighbour._write("stats", "bb000000", {"payload": "y"})
        evicted = caches.enforce_quotas()
        assert evicted >= 3
        assert entry_count(hog) == 0
        # The 1-byte quota evicts the neighbour's entry too — but only
        # from the neighbour's own sweep, never the hog's.
        assert caches.usage().keys() == {"hog", "neighbour"}


# ---------------------------------------------------------------------------
# pool
# ---------------------------------------------------------------------------


class TestEnginePool:
    def test_shard_assignment_is_stable(self):
        assert shard_for("acme", 4) == shard_for("acme", 4)
        assert 0 <= shard_for("acme", 4) < 4
        assert shard_for("anything", 1) == 0

    def test_resolve_preserves_order_across_tenants(self, tmp_path):
        pool = EnginePool(shards=2, jobs=1, tenants=TenantCaches(tmp_path))
        requests = [
            trace_request(tenant="a", request_id="0"),
            trace_request(tenant="b", request_id="1"),
            trace_request(tenant="a", request_id="2"),
        ]
        responses = pool.resolve(requests)
        assert [r.request_id for r in responses] == ["0", "1", "2"]
        assert [r.tenant for r in responses] == ["a", "b", "a"]
        assert all(r.status == "ok" for r in responses)
        assert pool.batches == 1 and pool.requests == 3

    def test_bad_request_does_not_sink_neighbours(self):
        pool = EnginePool(shards=1, jobs=1)
        responses = pool.resolve(
            [
                trace_request(request_id="good"),
                workload_request(workload="no-such-benchmark", request_id="bad"),
                trace_request(request_id="also-good"),
            ]
        )
        assert [r.status for r in responses] == ["ok", "error", "ok"]
        assert "no-such-benchmark" in responses[1].error


# ---------------------------------------------------------------------------
# compute kernel
# ---------------------------------------------------------------------------


class TestAdvisor:
    def test_trace_seed_ignores_tenant_but_not_content(self):
        a = trace_request(tenant="a")
        b = trace_request(tenant="b")
        assert trace_profile_seed(a) == trace_profile_seed(b)
        other = trace_request(trace=TRACE[:-1])
        assert trace_profile_seed(a) != trace_profile_seed(other)

    def test_trace_advice_carries_plan_only(self):
        response = compute_advice(trace_request(request_id="t-1"))
        assert response.ok
        assert response.request_id == "t-1"
        assert response.plan is not None and response.stats is None
        assert response.spec["trace_events"] == len(TRACE)

    def test_trace_with_planless_config_is_an_error_response(self):
        response = compute_advice(trace_request(config="baseline"))
        assert response.status == "error"
        assert "no software plan" in response.error

    def test_deterministic_response_bytes(self):
        first = protocol.encode_response(compute_advice(trace_request()))
        second = protocol.encode_response(compute_advice(trace_request()))
        assert first == second


# ---------------------------------------------------------------------------
# daemon: async unit tests (no sockets involved beyond the listener)
# ---------------------------------------------------------------------------


def run_async(coro):
    return asyncio.run(coro)


class TestServeOptions:
    def test_exactly_one_address(self, tmp_path):
        with pytest.raises(ExperimentError, match="exactly one"):
            ServeOptions()
        with pytest.raises(ExperimentError, match="exactly one"):
            ServeOptions(port=1234, unix_socket=str(tmp_path / "s"))
        with pytest.raises(ExperimentError, match="queue_capacity"):
            ServeOptions(port=1234, queue_capacity=0)
        with pytest.raises(ExperimentError, match="batch_max"):
            ServeOptions(port=1234, batch_max=0)

    def test_unix_socket_form_is_valid(self, tmp_path):
        options = ServeOptions(unix_socket=str(tmp_path / "s"))
        assert options.port is None


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, tmp_path):
        async def scenario():
            server = AdvisorServer(
                ServeOptions(
                    unix_socket=str(tmp_path / "adv.sock"),
                    queue_capacity=2,
                    jobs=1,
                )
            )
            await server.start()
            try:
                # Freeze the dispatcher so the queue genuinely fills.
                server._dispatcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await server._dispatcher
                server._dispatcher = None
                for _ in range(2):
                    server._queue.put_nowait((trace_request(), asyncio.Future(), None))
                response = await server.submit(trace_request(request_id="over"))
            finally:
                await server.shutdown(drain=False)
            return response, server.rejected

        response, rejected = run_async(scenario())
        assert response.status == "rejected"
        assert response.request_id == "over"
        assert response.retry_after > 0
        assert "queue is full" in response.error
        assert rejected == 1

    def test_draining_server_rejects_new_work(self, tmp_path):
        async def scenario():
            server = AdvisorServer(
                ServeOptions(
                    unix_socket=str(tmp_path / "adv.sock"),
                    jobs=1,
                    drain_seconds=1.25,
                )
            )
            await server.start()
            server.draining = True
            response = await server.submit(trace_request())
            server.draining = False
            await server.shutdown(drain=False)
            return response

        response = run_async(scenario())
        assert response.status == "rejected"
        assert response.retry_after == 1.25
        assert "draining" in response.error


class TestGracefulDrain:
    def test_shutdown_drains_queued_requests(self, tmp_path):
        async def scenario():
            server = AdvisorServer(
                ServeOptions(unix_socket=str(tmp_path / "adv.sock"), jobs=1)
            )
            await server.start()
            pending = [
                asyncio.create_task(server.submit(trace_request(request_id=str(i))))
                for i in range(3)
            ]
            await asyncio.sleep(0)  # let every submit enqueue
            await server.shutdown(drain=True)
            responses = await asyncio.gather(*pending)
            late = await server.submit(trace_request(request_id="late"))
            return responses, late

        responses, late = run_async(scenario())
        assert [r.status for r in responses] == ["ok", "ok", "ok"]
        assert {r.request_id for r in responses} == {"0", "1", "2"}
        assert late.status == "rejected"


# ---------------------------------------------------------------------------
# daemon: end-to-end over real sockets
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def running_server(options: ServeOptions):
    """An AdvisorServer on a background event-loop thread."""
    loop = asyncio.new_event_loop()
    started = threading.Event()
    box: dict = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = AdvisorServer(options)
        loop.run_until_complete(server.start())
        box["server"] = server
        started.set()
        loop.run_forever()
        loop.close()

    thread = threading.Thread(target=run, name="serve-test-loop", daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    server = box["server"]
    try:
        yield server
    finally:
        if not server._closed.is_set():
            asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


class TestDaemonEndToEnd:
    def test_hello_then_advice_on_unix_socket(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        with running_server(ServeOptions(unix_socket=sock, jobs=1)) as server:
            with AdvisorClient(unix_socket=sock) as client:
                assert client.hello["protocol"] == "repro-advisor-v1"
                assert client.hello["queue_capacity"] == 64
                response = client.advise(trace_request(request_id="e2e"))
            assert response.ok and response.request_id == "e2e"
            assert server.accepted == 1 and server.rejected == 0
        assert not Path(sock).exists()  # socket unlinked on shutdown

    def test_tcp_listener_resolves_port_zero(self, tmp_path):
        with running_server(ServeOptions(port=0, jobs=1)) as server:
            assert server.port not in (None, 0)
            with AdvisorClient(port=server.port) as client:
                response = client.advise(trace_request())
            assert response.ok

    def test_malformed_lines_get_error_responses(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        with running_server(ServeOptions(unix_socket=sock, jobs=1)):
            with AdvisorClient(unix_socket=sock) as client:
                client.send_raw(b"this is not json\n")
                response = client.read_response()
                assert response.status == "error"
                assert "invalid JSON" in response.error

                # Wrong kind: clients may only send requests.
                client.send_raw(protocol.encode_event("sneaky", request_id="x"))
                response = client.read_response()
                assert response.status == "error"
                assert response.request_id == "x"

                # The connection survives both errors.
                assert client.advise(trace_request()).ok

    def test_streaming_request_emits_lifecycle_events(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        with running_server(ServeOptions(unix_socket=sock, jobs=1)):
            with AdvisorClient(unix_socket=sock) as client:
                events: list = []
                response = client.advise(
                    trace_request(request_id="s-1", stream=True),
                    collect_events=events,
                )
        assert response.ok
        names = [e["event"] for e in events]
        assert [n for n in names if n != "span"] == ["queued", "dispatched", "done"]
        assert all(e["request_id"] == "s-1" for e in events)

    def test_concurrent_mixed_tenants_with_cache_isolation(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        cache_root = tmp_path / "cache"
        options = ServeOptions(
            unix_socket=sock,
            jobs=1,
            shards=2,
            use_cache=True,
            cache_dir=str(cache_root),
        )
        tenants = ("alpha", "beta", "gamma")
        results: dict[int, AdvisorResponse] = {}
        errors: list = []

        def client_turn(i: int) -> None:
            try:
                with AdvisorClient(unix_socket=sock, timeout=120) as client:
                    request = workload_request(
                        tenant=tenants[i % len(tenants)],
                        request_id=f"c-{i}",
                        want_stats=(i % 2 == 0),
                    )
                    results[i] = client.advise(request)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((i, exc))

        with running_server(options) as server:
            threads = [
                threading.Thread(target=client_turn, args=(i,)) for i in range(9)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not errors, errors
            assert len(results) == 9
            for i, response in results.items():
                assert response.ok, response.error
                assert response.tenant == tenants[i % len(tenants)]
                assert response.request_id == f"c-{i}"
                assert response.plan is not None
            assert server.tenants.known() == sorted(tenants)

        # Persistent isolation: every tenant namespace holds its own
        # entries; the parent cache root holds none of them directly.
        parent = ResultCache(cache_root)
        assert parent.tenants() == sorted(tenants)
        assert entry_count(parent) == 0
        for tenant in tenants:
            assert entry_count(parent.tenant_view(tenant)) > 0

    def test_serve_path_matches_one_shot_advise_byte_for_byte(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        request = workload_request(request_id="parity")
        with running_server(ServeOptions(unix_socket=sock, jobs=1)):
            with AdvisorClient(unix_socket=sock) as client:
                served = client.advise(request)
        one_shot = advise(request)
        assert protocol.encode_response(served) == protocol.encode_response(one_shot)


# ---------------------------------------------------------------------------
# the real process: CLI serve + SIGTERM drain
# ---------------------------------------------------------------------------


class TestServeProcess:
    def test_cli_daemon_serves_and_drains_on_sigterm(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--unix-socket",
                sock,
                "--jobs",
                "1",
                "--cache-dir",
                str(tmp_path / "cache"),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not Path(sock).exists():
                assert process.poll() is None, process.stdout.read()
                assert time.monotonic() < deadline, "daemon never bound its socket"
                time.sleep(0.05)
            with AdvisorClient(unix_socket=sock, timeout=120) as client:
                response = client.advise(trace_request(request_id="proc"))
            assert response.ok and response.request_id == "proc"

            process.send_signal(signal.SIGTERM)
            output = process.communicate(timeout=60)[0]
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup path
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "draining" in output
        assert not Path(sock).exists()


# ---------------------------------------------------------------------------
# JSON shape of the wire documents (client-less consumers)
# ---------------------------------------------------------------------------


class TestWireDocuments:
    def test_response_line_is_plain_json(self, tmp_path):
        sock = str(tmp_path / "advisor.sock")
        with running_server(ServeOptions(unix_socket=sock, jobs=1)):
            raw = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            raw.settimeout(60)
            raw.connect(sock)
            with raw, raw.makefile("rwb") as stream:
                hello = json.loads(stream.readline())
                assert hello["kind"] == "hello"
                stream.write(protocol.encode_request(trace_request()))
                stream.flush()
                line = stream.readline()
        document = json.loads(line)
        assert document["kind"] == "response"
        assert document["format"] == "repro-advisor-response-v1"
        assert document["status"] == "ok"
