"""Tests for the unified ExperimentSpec API and the deprecated shims."""

import pytest

from repro.api import CONFIGS, ExperimentSpec, plan, profile, run
from repro.errors import ExperimentError
from repro.experiments import runner

SCALE = 0.05


class TestSpecValidation:
    def test_defaults(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii")
        assert spec.config == "baseline"
        assert spec.input_set == "ref"
        assert spec.scale == 1.0

    def test_unknown_config_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("mcf", "amd-phenom-ii", "quantum")

    @pytest.mark.parametrize("scale", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(ExperimentError):
            ExperimentSpec("mcf", "amd-phenom-ii", scale=scale)

    @pytest.mark.parametrize("field", ["workload", "machine", "input_set"])
    def test_empty_strings_rejected(self, field):
        kwargs = {"workload": "mcf", "machine": "amd-phenom-ii", "input_set": "ref"}
        kwargs[field] = ""
        with pytest.raises(ExperimentError):
            ExperimentSpec(**kwargs)

    def test_scale_normalised_to_float(self):
        a = ExperimentSpec("mcf", "amd-phenom-ii", scale=1)
        b = ExperimentSpec("mcf", "amd-phenom-ii", scale=1.0)
        assert a == b and hash(a) == hash(b)
        assert isinstance(a.scale, float)

    def test_frozen(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii")
        with pytest.raises(AttributeError):
            spec.config = "hw"


class TestSpecDerivedViews:
    def test_profile_key_ignores_machine_and_config(self):
        a = ExperimentSpec("mcf", "amd-phenom-ii", "hw", "train", 0.2)
        b = ExperimentSpec("mcf", "intel-i7-2600k", "swnt", "train", 0.2)
        assert a.profile_key == b.profile_key == ("mcf", "train", 0.2)

    @pytest.mark.parametrize(
        "config,kind",
        [("baseline", None), ("hw", None), ("sw", "sw"), ("swnt", "swnt"),
         ("stride", "stride"), ("hwsw", "swnt")],
    )
    def test_plan_kind(self, config, kind):
        assert ExperimentSpec("mcf", "amd-phenom-ii", config).plan_kind == kind

    def test_with_config(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii", "baseline", "train", 0.2)
        other = spec.with_config("swnt")
        assert other.config == "swnt"
        assert other.profile_key == spec.profile_key

    def test_grid_order_and_size(self):
        grid = ExperimentSpec.grid(
            ("a1", "b2"), ("amd-phenom-ii",), ("baseline", "hw"), scales=(0.1,)
        )
        assert len(grid) == 4
        assert grid[0] == ExperimentSpec("a1", "amd-phenom-ii", "baseline", "ref", 0.1)
        assert [s.workload for s in grid] == ["a1", "a1", "b2", "b2"]

    def test_label(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii", "swnt", "train", 0.25)
        assert spec.label() == "mcf/amd-phenom-ii/swnt/train@0.25"


class TestFacade:
    def test_run_is_memoised(self):
        spec = ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", scale=SCALE)
        assert run(spec) is run(spec)

    def test_profile_ignores_machine(self):
        a = profile(ExperimentSpec("mcf", "amd-phenom-ii", scale=SCALE))
        b = profile(ExperimentSpec("mcf", "intel-i7-2600k", scale=SCALE))
        assert a is b

    def test_plan_requires_plan_config(self):
        with pytest.raises(ExperimentError):
            plan(ExperimentSpec("mcf", "amd-phenom-ii", "baseline", scale=SCALE))

    def test_plan_for_hwsw_is_swnt_plan(self):
        hwsw = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "hwsw", scale=SCALE))
        swnt = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "swnt", scale=SCALE))
        assert hwsw is swnt


class TestDeprecatedShims:
    def test_profile_workload_warns_and_matches(self):
        direct = runner.profile_for("mcf", "ref", SCALE)
        with pytest.warns(DeprecationWarning):
            legacy = runner.profile_workload("mcf", "ref", SCALE)
        assert legacy is direct

    def test_run_config_warns_and_shares_cache(self):
        spec = ExperimentSpec("libquantum", "amd-phenom-ii", "hw", scale=SCALE)
        fresh = run(spec)
        with pytest.warns(DeprecationWarning):
            legacy = runner.run_config("libquantum", "amd-phenom-ii", "hw", scale=SCALE)
        assert legacy is fresh

    def test_run_all_configs_warns_and_covers_configs(self):
        with pytest.warns(DeprecationWarning):
            runs = runner.run_all_configs(
                "libquantum", "amd-phenom-ii", scale=SCALE, configs=("baseline", "hw")
            )
        assert set(runs) == {"baseline", "hw"}
        assert runs["baseline"] is run(
            ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", scale=SCALE)
        )

    def test_plan_for_warns_and_matches(self):
        direct = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "sw", scale=SCALE))
        with pytest.warns(DeprecationWarning):
            legacy = runner.plan_for("libquantum", "amd-phenom-ii", "sw", scale=SCALE)
        assert legacy is direct

    def test_configs_reexported(self):
        assert runner.CONFIGS == CONFIGS
