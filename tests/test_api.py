"""Tests for the unified ExperimentSpec API and the removed legacy shims."""

import pytest

from repro.api import CONFIGS, ExperimentSpec, plan, profile, run
from repro.errors import ExperimentError
from repro.experiments import runner

SCALE = 0.05


class TestSpecValidation:
    def test_defaults(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii")
        assert spec.config == "baseline"
        assert spec.input_set == "ref"
        assert spec.scale == 1.0

    def test_unknown_config_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("mcf", "amd-phenom-ii", "quantum")

    @pytest.mark.parametrize("scale", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_scale_rejected(self, scale):
        with pytest.raises(ExperimentError):
            ExperimentSpec("mcf", "amd-phenom-ii", scale=scale)

    @pytest.mark.parametrize("field", ["workload", "machine", "input_set"])
    def test_empty_strings_rejected(self, field):
        kwargs = {"workload": "mcf", "machine": "amd-phenom-ii", "input_set": "ref"}
        kwargs[field] = ""
        with pytest.raises(ExperimentError):
            ExperimentSpec(**kwargs)

    def test_scale_normalised_to_float(self):
        a = ExperimentSpec("mcf", "amd-phenom-ii", scale=1)
        b = ExperimentSpec("mcf", "amd-phenom-ii", scale=1.0)
        assert a == b and hash(a) == hash(b)
        assert isinstance(a.scale, float)

    def test_frozen(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii")
        with pytest.raises(AttributeError):
            spec.config = "hw"


class TestSpecDerivedViews:
    def test_profile_key_ignores_machine_and_config(self):
        a = ExperimentSpec("mcf", "amd-phenom-ii", "hw", "train", 0.2)
        b = ExperimentSpec("mcf", "intel-i7-2600k", "swnt", "train", 0.2)
        assert a.profile_key == b.profile_key == ("mcf", "train", 0.2)

    @pytest.mark.parametrize(
        "config,kind",
        [("baseline", None), ("hw", None), ("sw", "sw"), ("swnt", "swnt"),
         ("stride", "stride"), ("hwsw", "swnt")],
    )
    def test_plan_kind(self, config, kind):
        assert ExperimentSpec("mcf", "amd-phenom-ii", config).plan_kind == kind

    def test_with_config(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii", "baseline", "train", 0.2)
        other = spec.with_config("swnt")
        assert other.config == "swnt"
        assert other.profile_key == spec.profile_key

    def test_grid_order_and_size(self):
        grid = ExperimentSpec.grid(
            ("a1", "b2"), ("amd-phenom-ii",), ("baseline", "hw"), scales=(0.1,)
        )
        assert len(grid) == 4
        assert grid[0] == ExperimentSpec("a1", "amd-phenom-ii", "baseline", "ref", 0.1)
        assert [s.workload for s in grid] == ["a1", "a1", "b2", "b2"]

    def test_label(self):
        spec = ExperimentSpec("mcf", "amd-phenom-ii", "swnt", "train", 0.25)
        assert spec.label() == "mcf/amd-phenom-ii/swnt/train@0.25"


class TestFacade:
    def test_run_is_memoised(self):
        spec = ExperimentSpec("libquantum", "amd-phenom-ii", "baseline", scale=SCALE)
        assert run(spec) is run(spec)

    def test_profile_ignores_machine(self):
        a = profile(ExperimentSpec("mcf", "amd-phenom-ii", scale=SCALE))
        b = profile(ExperimentSpec("mcf", "intel-i7-2600k", scale=SCALE))
        assert a is b

    def test_plan_requires_plan_config(self):
        with pytest.raises(ExperimentError):
            plan(ExperimentSpec("mcf", "amd-phenom-ii", "baseline", scale=SCALE))

    def test_plan_for_hwsw_is_swnt_plan(self):
        hwsw = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "hwsw", scale=SCALE))
        swnt = plan(ExperimentSpec("libquantum", "amd-phenom-ii", "swnt", scale=SCALE))
        assert hwsw is swnt


class TestRemovedShims:
    """The stringly-typed entry points finished their tombstone cycle;
    the old names are now plain AttributeErrors like any other typo."""

    NAMES = ("profile_workload", "plan_for", "run_config", "run_all_configs")

    @pytest.mark.parametrize("name", NAMES)
    def test_runner_names_raise_attribute_error(self, name):
        with pytest.raises(AttributeError):
            getattr(runner, name)

    @pytest.mark.parametrize("name", NAMES)
    def test_package_names_raise_attribute_error(self, name):
        import repro.experiments as experiments

        with pytest.raises(AttributeError):
            getattr(experiments, name)

    def test_engine_lazy_reexport_survives(self):
        import repro.experiments as experiments

        assert experiments.ExperimentEngine.__name__ == "ExperimentEngine"

    def test_configs_reexported(self):
        assert runner.CONFIGS == CONFIGS


class TestEngineSurface:
    """repro.api is the one import point for the engine machinery."""

    def test_engine_types_resolvable(self):
        import repro.api as api

        assert api.ExperimentEngine.__name__ == "ExperimentEngine"
        assert api.EngineStats.__name__ == "EngineStats"
        assert api.FailureReport.__name__ == "FailureReport"
        assert api.RetryPolicy.__name__ == "RetryPolicy"

    def test_configure_installs_default_engine(self):
        from repro.api import configure, current_engine, reset_default_engine

        try:
            engine = configure(jobs=1, use_cache=False)
            assert current_engine() is engine
        finally:
            reset_default_engine()

    def test_current_engine_creates_on_demand(self):
        from repro.api import current_engine, reset_default_engine

        reset_default_engine()
        engine = current_engine()
        assert current_engine() is engine
        reset_default_engine()
