"""Tests for the GHB delta-correlation prefetcher."""

import numpy as np
import pytest

from repro.cachesim import CacheHierarchy
from repro.hwpref import GHBPrefetcher, PCStridePrefetcher
from repro.trace import MemoryTrace


def drive(pf, deltas, n, pc=0, start=0):
    addr = start
    fired = []
    for i in range(n):
        addr += deltas[i % len(deltas)]
        fired += [r.line for r in pf.observe(pc, addr, addr // 64, False)]
    return fired


class TestDeltaCorrelation:
    def test_constant_stride_still_covered(self):
        fired = drive(GHBPrefetcher(), [64], 30)
        assert fired
        assert all(line > 0 for line in fired)

    def test_repeating_delta_sequence(self):
        # +8,+8,+48 struct walk: no dominant single stride, clear delta
        # pattern — the GHB's home turf
        fired = drive(GHBPrefetcher(), [8, 8, 48], 60)
        assert len(fired) > 20

    def test_ghb_beats_rpt_on_patterned_deltas(self):
        """End-to-end: delta-patterned misses covered better by GHB."""
        deltas = [8, 8, 240]  # advances a line per period, irregularly
        addr = 0
        addrs = []
        for i in range(30_000):
            addr += deltas[i % 3]
            addrs.append(addr)
        trace = MemoryTrace.loads(np.zeros(len(addrs), np.int64), addrs)

        from repro.config import amd_phenom_ii

        machine = amd_phenom_ii()
        base = CacheHierarchy(machine).run(trace, work_per_memop=8.0, mlp=4.0)
        ghb = CacheHierarchy(machine, prefetcher=GHBPrefetcher()).run(
            trace, work_per_memop=8.0, mlp=4.0
        )
        assert ghb.cycles < base.cycles
        assert ghb.hw_useful > 0

    def test_random_pattern_stays_quiet(self, rng):
        deltas = rng.integers(-4096, 4096, size=97).tolist()
        fired = drive(GHBPrefetcher(), deltas, 90)
        # no repeating pair: (almost) nothing should fire
        assert len(fired) < 10

    def test_per_pc_isolation(self):
        pf = GHBPrefetcher()
        drive(pf, [64], 20, pc=0)
        # a fresh PC has no history: needs warm-up before firing
        assert pf.observe(1, 0, 0, False) == []

    def test_table_bounded(self):
        pf = GHBPrefetcher(table_size=8)
        for pc in range(32):
            pf.observe(pc, 0, 0, False)
        assert len(pf._table) <= 8

    def test_reset(self):
        pf = GHBPrefetcher()
        drive(pf, [64], 20)
        pf.reset()
        assert drive(pf, [64], 3) == []

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GHBPrefetcher(history=2)
        with pytest.raises(ValueError):
            GHBPrefetcher(degree=0)

    def test_constant_stride_detected_at_fourth_access(self):
        """Regression: the pair search must include the overlapping pair.

        With four addresses the history holds three deltas; for a
        constant stride the newest candidate pair — overlapping the key
        by one delta — is the *only* match.  The old search started one
        position too low, skipped it, and detected every stream exactly
        one observation late.
        """
        pf = GHBPrefetcher()
        fired = []
        for i in range(4):
            fired = pf.observe(0, i * 64, i, False)
        assert [r.line for r in fired] == [4]  # 4 * 64 = the next line

    def test_period_two_delta_pattern_exact_replay(self):
        # +64,+192 alternation: the key pair first re-occurs at the 5th
        # access, and replaying the delta after the match must predict
        # the next address of the pattern, not a constant stride.
        pf = GHBPrefetcher(degree=1)
        addrs = [0, 64, 256, 320, 512]
        fired = []
        for i, addr in enumerate(addrs):
            fired = pf.observe(0, addr, addr // 64, False)
            if i == 3:
                assert fired == []  # pattern not seen twice yet
        assert [r.line for r in fired] == [(512 + 64) // 64]
