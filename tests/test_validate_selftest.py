"""Mutation self-test: each conformance engine must detect its corruption.

These are the harness's own teeth check — a biased model must trip the
differential suite, a perturbed eviction policy must trip the LRU stack
invariant, and a corrupted codec must trip the fuzzer.  If any mutation
goes undetected the harness is vacuous, so this runs in tier 1.
"""

import numpy as np

from repro.cachesim.lru import LRUCache
from repro.config import CacheConfig
from repro.statstack.model import StatStackModel
from repro.validate import run_selftest
from repro.validate.selftest import (
    _mutate_codec,
    _mutate_eviction,
    _mutate_model,
    _mutate_xcore,
    _selftest_corpus,
)


class TestSelfTest:
    def test_all_mutations_detected(self):
        outcomes = run_selftest(seed=0)
        assert len(outcomes) == 4
        missed = [o for o in outcomes if not o.detected]
        assert not missed, [f"{o.mutation}: {o.detail}" for o in missed]
        assert {o.engine for o in outcomes} == {"differential", "invariants", "fuzz"}

    def test_model_bias_detected(self):
        outcome = _mutate_model(_selftest_corpus(seed=0))
        assert outcome.detected, outcome.detail

    def test_eviction_perturbation_detected(self):
        outcome = _mutate_eviction(_selftest_corpus(seed=0))
        assert outcome.detected, outcome.detail

    def test_codec_corruption_detected(self):
        outcome = _mutate_codec(seed=0)
        assert outcome.detected, outcome.detail

    def test_broken_index_resolver_detected(self):
        outcome = _mutate_xcore(seed=0)
        assert outcome.detected, outcome.detail

    def test_mutations_are_reverted(self):
        # run_selftest monkeypatches the model, the cache and the fault
        # registry; all three must be restored afterwards.
        model_fn = StatStackModel.miss_ratio
        install_fn = LRUCache.install
        run_selftest(seed=0)
        assert StatStackModel.miss_ratio is model_fn
        assert LRUCache.install is install_fn
        # sanity: an untouched cache still evicts the LRU line
        cache = LRUCache(CacheConfig("t", 4 * 64, ways=4, line_bytes=64))
        for line in (0, 1, 2, 3):
            cache.install(line)
        victim = cache.install(4)
        assert victim is not None and victim[0] == 0


def test_selftest_outcomes_serialize():
    doc = [o.as_dict() for o in run_selftest(seed=1)]
    assert all({"mutation", "engine", "detected", "detail"} <= set(d) for d in doc)
    assert all(isinstance(d["detected"], (bool, np.bool_)) for d in doc)
