#!/usr/bin/env python
"""Explore StatStack miss-ratio curves and check them against simulation.

Prints a benchmark's modelled application MRC (paper Fig. 3 style) and
the per-instruction curves of its hottest loads, then validates the
model against the exact functional simulator at the AMD cache sizes.

Run:  python examples/cache_model_explorer.py [benchmark] [scale]
"""

import sys

from repro.cachesim import FunctionalCacheSim
from repro.config import amd_phenom_ii
from repro.experiments.tables import render_table
from repro.isa import execute_program
from repro.sampling import RuntimeSampler
from repro.statstack import PerPCMissRatios, StatStackModel, default_size_grid
from repro.workloads import build_program, workload_seed


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    machine = amd_phenom_ii()

    program = build_program(name, "ref", scale)
    execution = execute_program(program, seed=workload_seed(name, "ref"))
    sampling = RuntimeSampler(rate=2e-3, seed=3).sample(execution.trace)
    model = StatStackModel(sampling.reuse, machine.line_bytes)
    ratios = PerPCMissRatios(model, machine, size_grid=default_size_grid())

    hot = sorted(model.modelled_pcs(), key=model.pc_sample_weight, reverse=True)[:3]
    rows = []
    for size in ratios.size_grid.tolist():
        label = f"{size // 1024}k" if size < 1 << 20 else f"{size >> 20}M"
        rows.append(
            (
                label,
                f"{model.miss_ratio(size) * 100:5.1f}%",
                *(f"{model.pc_miss_ratio(pc, size) * 100:5.1f}%" for pc in hot),
            )
        )
    print(render_table(
        ("size", "app", *(f"pc{pc}" for pc in hot)),
        rows,
        title=f"StatStack miss-ratio curves — {name}",
    ))

    print("\nvalidation against exact simulation:")
    for level in (machine.l1, machine.l2):
        sim = FunctionalCacheSim(level)
        sim.run(execution.trace)
        modelled = model.miss_ratio(level.size_bytes)
        print(f"  {level.name} ({level.size_bytes >> 10} kB): "
              f"model {modelled:.4f} vs simulated {sim.miss_ratio():.4f}")


if __name__ == "__main__":
    main()
