#!/usr/bin/env python
"""Online re-optimisation across program phases.

The paper motivates its binary-level design with dynamic rewriting:
sampling is cheap enough to run *during* execution.  This example builds
a two-phase program (a pointer-chasing setup phase followed by a
streaming compute phase), runs the windowed sample→analyse→rewrite loop,
and shows the plan tracking the phase change — and the speedup over
both no prefetching and a static plan profiled on the wrong phase.

Run:  python examples/online_adaptation.py
"""

import numpy as np

from repro.cachesim import CacheHierarchy
from repro.config import amd_phenom_ii
from repro.core import OnlineOptimizer, PrefetchOptimizer, apply_prefetch_plan
from repro.sampling import RuntimeSampler
from repro.trace import MemoryTrace
from repro.trace.synthesis import chase_pattern, strided_pattern


def main() -> None:
    machine = amd_phenom_ii()
    rng = np.random.default_rng(9)
    n = 160_000

    setup = MemoryTrace.loads(
        np.zeros(n, np.int64), chase_pattern(rng, 0, 60_000, n)
    )
    compute = MemoryTrace.loads(
        np.ones(n, np.int64), strided_pattern(1 << 31, n, 16)
    )
    trace = MemoryTrace.concat([setup, compute])

    # --- no prefetching -------------------------------------------------
    base = CacheHierarchy(machine).run(trace, work_per_memop=6.0, mlp=4.0)

    # --- static plan, profiled on the setup phase only ------------------
    early_sampling = RuntimeSampler(rate=5e-3, seed=1).sample(trace[: n // 2])
    static_plan = PrefetchOptimizer(machine).analyze(early_sampling)
    static = CacheHierarchy(machine).run(
        apply_prefetch_plan(trace, static_plan), work_per_memop=6.0, mlp=4.0
    )

    # --- online adaptation ----------------------------------------------
    online = OnlineOptimizer(machine, window_refs=40_000, history_windows=1)
    result = online.run(trace, work_per_memop=6.0, mlp=4.0)

    print("plan per window (prefetched PCs):")
    for w, plan in enumerate(result.plans):
        kind = {0: "chase phase", 1: "stream phase"}
        pcs = sorted(plan.prefetched_pcs)
        print(f"  window {w}: {pcs}")
    print()
    print(f"baseline (no prefetch):   {base.cycles:12.0f} cycles")
    print(f"static plan (early prof): {static.cycles:12.0f} cycles "
          f"({base.cycles / static.cycles:.3f}x)")
    print(f"online adaptation:        {result.stats.cycles:12.0f} cycles "
          f"({base.cycles / result.stats.cycles:.3f}x, "
          f"{result.plan_changes()} plan changes)")


if __name__ == "__main__":
    main()
