#!/usr/bin/env python
"""Mini mixed-workload study — the paper's multicore argument in small.

Evaluates a reduced version of Fig. 7 (random 4-application mixes on the
AMD machine) comparing resource-efficient software prefetching against
the hardware prefetcher, and prints the sorted throughput distribution
plus the paper's summary statistics.

Run:  python examples/mixed_workload_study.py [n_mixes] [scale]
(defaults: 20 mixes at scale 0.3 — a couple of minutes)
"""

import sys

from repro.experiments.fig7_mixes import fig7_summary, render_fig7, run_fig7


def main() -> None:
    n_mixes = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3

    print(f"evaluating {n_mixes} mixes on amd-phenom-ii at scale {scale} ...")
    result = run_fig7("amd-phenom-ii", n_mixes=n_mixes, scale=scale)
    print()
    print(render_fig7(result))

    summary = fig7_summary(result)
    print()
    print("Paper shape checks:")
    print(f"  software avg speedup  {summary['sw_avg_speedup']:+.1%} "
          f"(paper AMD: +16%)")
    print(f"  hardware avg speedup  {summary['hw_avg_speedup']:+.1%} "
          f"(paper AMD: +6%)")
    print(f"  software never hurts: min speedup {summary['sw_min_speedup']:+.1%}")
    print(f"  traffic better than HW in {summary['sw_traffic_always_better']:.0%} of mixes")


if __name__ == "__main__":
    main()
