#!/usr/bin/env python
"""Quickstart: profile a workload, build a prefetch plan, measure the win.

This walks the paper's whole pipeline (Fig. 1) on one benchmark model:

1. execute the program to get its memory trace;
2. sparse-sample reuse distances and strides (the runtime pass);
3. run the analysis (StatStack → MDDLI → stride/distance/bypass);
4. insert the prefetches and re-simulate on the AMD Phenom II model.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro.cachesim import CacheHierarchy
from repro.config import amd_phenom_ii
from repro.core import PrefetchOptimizer, apply_prefetch_plan
from repro.isa import execute_program
from repro.sampling import RuntimeSampler
from repro.workloads import build_program, workload_seed


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    machine = amd_phenom_ii()

    print(f"== {name} on {machine.name} (scale {scale}) ==")
    program = build_program(name, "ref", scale)
    execution = execute_program(program, seed=workload_seed(name, "ref"))
    print(f"trace: {len(execution.trace)} events, "
          f"{program.n_static_mem_instructions} static memory instructions")

    sampler = RuntimeSampler(rate=2e-3, seed=1)
    sampling = sampler.sample(execution.trace)
    print(f"sampling: {sampling.describe()}")

    optimizer = PrefetchOptimizer(machine)
    plan = optimizer.analyze(sampling, refs_per_pc=program.refs_per_pc())
    print()
    print(plan.summary())

    optimised = apply_prefetch_plan(execution.trace, plan)
    base = CacheHierarchy(machine).run(
        execution.trace,
        work_per_memop=execution.work_per_memop,
        mlp=execution.mlp,
    )
    opt = CacheHierarchy(machine).run(
        optimised,
        work_per_memop=execution.work_per_memop,
        mlp=execution.mlp,
    )
    print()
    print(f"baseline:  {base.cycles:12.0f} cycles, "
          f"L1 miss ratio {base.l1.miss_ratio:.3f}, "
          f"{base.dram_bytes >> 10} KiB off-chip")
    print(f"optimised: {opt.cycles:12.0f} cycles, "
          f"L1 miss ratio {opt.l1.miss_ratio:.3f}, "
          f"{opt.dram_bytes >> 10} KiB off-chip")
    print(f"speedup:   {base.cycles / opt.cycles:.3f}x "
          f"({opt.sw_useful} useful / {opt.sw_late} late / "
          f"{opt.sw_useless} useless prefetches)")


if __name__ == "__main__":
    main()
