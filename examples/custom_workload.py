#!/usr/bin/env python
"""Bring your own workload: model, register, optimise.

Demonstrates the extension API: define a program whose memory behaviour
matches *your* application (here: a hash-join — build side streams,
probe side gathers over the hash table), register it, and run the full
optimisation pipeline plus the bypass analysis on both machines.

Run:  python examples/custom_workload.py
"""

from repro.cachesim import CacheHierarchy
from repro.config import MACHINES, get_machine
from repro.core import PrefetchOptimizer, apply_prefetch_plan
from repro.isa import (
    GatherAccess,
    Kernel,
    Load,
    Program,
    Store,
    StridedAccess,
    execute_program,
)
from repro.sampling import RuntimeSampler
from repro.workloads import WorkloadSpec, build_program, register_workload, workload_seed

MB = 1 << 20


def _hash_join(input_set: str, scale: float) -> Program:
    rows = {"ref": 20 * MB, "small": 6 * MB}[input_set]
    table = {"ref": 3 * MB, "small": 1 * MB}[input_set]
    base = 40 << 30
    build = Kernel(
        "build",
        (
            Load("src", StridedAccess(base, 16, wrap_bytes=rows)),
            Store("bucket", GatherAccess(base + (1 << 30), table, locality=0.1)),
        ),
        trips=max(16, int(30_000 * scale)),
        work_per_memop=4.0,
        mlp=4.0,
    )
    probe = Kernel(
        "probe",
        (
            Load("probe_src", StridedAccess(base + (2 << 30), 16, wrap_bytes=rows)),
            Load("bucket2", GatherAccess(base + (1 << 30), table, locality=0.1)),
            Store("out", StridedAccess(base + (3 << 30), 8, wrap_bytes=rows)),
        ),
        trips=max(16, int(60_000 * scale)),
        work_per_memop=5.0,
        mlp=4.0,
    )
    return Program("hashjoin", (build, probe))


def main() -> None:
    register_workload(
        WorkloadSpec(
            "hashjoin-custom",
            _hash_join,
            "hash join: streaming build/probe + hash-table gathers",
            inputs=("ref", "small"),
            suite="custom",
        )
    )

    program = build_program("hashjoin-custom", "ref", scale=0.4)
    execution = execute_program(program, seed=workload_seed("hashjoin-custom", "ref"))
    sampling = RuntimeSampler(rate=2e-3, seed=11).sample(execution.trace)
    print(f"hashjoin: {len(execution.trace)} events; {sampling.describe()}\n")

    for machine_name in MACHINES:
        machine = get_machine(machine_name)
        plan = PrefetchOptimizer(machine).analyze(
            sampling, refs_per_pc=program.refs_per_pc()
        )
        optimised = apply_prefetch_plan(execution.trace, plan)
        base = CacheHierarchy(machine).run(
            execution.trace, execution.work_per_memop, execution.mlp
        )
        opt = CacheHierarchy(machine).run(
            optimised, execution.work_per_memop, execution.mlp
        )
        nta = sum(d.nta for d in plan.decisions)
        print(f"{machine_name}: {len(plan.decisions)} prefetches ({nta} NTA), "
              f"speedup {base.cycles / opt.cycles:.3f}x, "
              f"traffic {opt.dram_bytes / base.dram_bytes:.2f}x")
        for d in plan.decisions:
            print(f"    pc {d.pc}: {d.kind} {d.distance_bytes:+d}(base)")


if __name__ == "__main__":
    main()
