#!/usr/bin/env python
"""Assembler-level prefetch insertion, the way the paper's framework works.

The paper's tool takes a program's assembler output and splices
``prefetch[nta] distance(base)`` after each selected load (§VI-C).  This
example shows the equivalent round trip on the mini-IR: emit the
original assembly, run the analysis, emit the *rewritten* assembly, and
verify the optimised program touches exactly the same demand addresses.

Run:  python examples/rewrite_assembly.py
"""

from repro.config import intel_i7_2600k
from repro.core import PrefetchOptimizer
from repro.isa import (
    ChaseAccess,
    Kernel,
    Load,
    Program,
    Store,
    StridedAccess,
    emit,
    execute_program,
    insert_prefetches,
    parse,
)
from repro.sampling import RuntimeSampler


def main() -> None:
    program = Program(
        "kernel_demo",
        (
            Kernel(
                "daxpy",
                (
                    Load("x", StridedAccess(0x1000_0000, 8, wrap_bytes=16 << 20)),
                    Load("y", StridedAccess(0x2000_5040, 8, wrap_bytes=16 << 20)),
                    Store("out", StridedAccess(0x3000_a080, 8, wrap_bytes=16 << 20)),
                ),
                trips=60_000,
                work_per_memop=6.0,
                mlp=8.0,
            ),
            Kernel(
                "index_walk",
                (Load("head", ChaseAccess(0x5000_0000, 40_000, 64)),),
                trips=30_000,
                work_per_memop=3.0,
                mlp=1.5,
            ),
        ),
    )

    print("== original assembly ==")
    print(emit(program))

    execution = execute_program(program, seed=7)
    sampling = RuntimeSampler(rate=2e-3, seed=7).sample(execution.trace)
    machine = intel_i7_2600k()
    plan = PrefetchOptimizer(machine).analyze(
        sampling, refs_per_pc=program.refs_per_pc()
    )
    rewritten = insert_prefetches(program, plan)

    print("== rewritten assembly ==")
    asm = emit(rewritten)
    print(asm)

    # The dialect round-trips, and rewriting never perturbs the demand
    # address stream (binary-rewriting property).
    assert parse(asm).pc_map() == rewritten.pc_map()
    original_demand = execution.trace.demand_only()
    rewritten_demand = execute_program(rewritten, seed=7).trace.demand_only()
    assert original_demand == rewritten_demand
    print("demand address stream identical after rewriting: OK")
    print(f"inserted {sum(1 for _ in plan.decisions)} prefetch instructions; "
          f"chase load skipped: {plan.skipped}")


if __name__ == "__main__":
    main()
