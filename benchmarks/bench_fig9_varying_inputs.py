"""Regenerates paper Fig. 9: the 180 mixes with alternate inputs."""

import pytest
from conftest import save_artifact

from repro.experiments.fig7_mixes import fig7_summary
from repro.experiments.fig9_varying_inputs import render_fig9, run_fig9


@pytest.mark.parametrize("machine", ["amd-phenom-ii", "intel-i7-2600k"])
def test_fig9_varying_inputs(benchmark, bench_scale, bench_mixes, results_dir, machine):
    result = benchmark.pedantic(
        run_fig9,
        args=(machine,),
        kwargs={"n_mixes": bench_mixes, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    save_artifact(results_dir, f"fig9_varying_inputs_{machine}.txt", render_fig9(result))

    summary = fig7_summary(result)
    for key, value in summary.items():
        benchmark.extra_info[key] = round(value, 4)

    # Paper §VII-D: the profile generalises — software prefetching still
    # beats hardware prefetching on average with inputs it never saw,
    # and remains stable (no mix materially slowed down; the paper's
    # Fig. 9 distributions bottom out around zero).
    assert summary["sw_avg_speedup"] > summary["hw_avg_speedup"]
    assert summary["sw_min_speedup"] > -0.10
