"""Extension benchmark: non-temporal stores on top of Soft.Pref.+NT.

Not a paper artefact — quantifies the MOVNT extension enabled by the
same data-reuse analysis that drives the paper's PREFETCHNTA decision.
Normal streaming stores cost two off-chip transfers per line (the
read-for-ownership fill plus the eventual writeback); write-combined NT
stores cost one.
"""

from conftest import save_artifact

from repro.cachesim import CacheHierarchy
from repro.config import get_machine
from repro.core import (
    OptimizerSettings,
    PrefetchOptimizer,
    apply_nt_stores,
    apply_prefetch_plan,
)
from repro.experiments.runner import profile_for
from repro.experiments.tables import render_table

MACHINE = "amd-phenom-ii"
STORE_HEAVY = ("libquantum", "lbm", "leslie3d", "milc")


def _run(scale):
    machine = get_machine(MACHINE)
    rows = []
    any_improved = False
    for name in STORE_HEAVY:
        profile = profile_for(name, "ref", scale)
        execution = profile.execution
        opt = PrefetchOptimizer(machine, OptimizerSettings(enable_nt_stores=True))
        plan = opt.analyze(
            profile.sampling,
            refs_per_pc=profile.program.refs_per_pc(),
            store_pcs=profile.program.store_pcs(),
        )
        swnt_trace = apply_prefetch_plan(execution.trace, plan)
        nts_trace = apply_nt_stores(swnt_trace, plan.nt_stores)

        def run(tr):
            h = CacheHierarchy(machine)
            s = h.run(tr, execution.work_per_memop, execution.mlp)
            h.drain_writebacks(s)
            return s

        base = run(execution.trace)
        swnt = run(swnt_trace)
        nts = run(nts_trace)
        traffic_swnt = swnt.dram_bytes / base.dram_bytes - 1.0
        traffic_nts = nts.dram_bytes / base.dram_bytes - 1.0
        any_improved |= nts.dram_bytes < swnt.dram_bytes
        rows.append(
            (
                name,
                len(plan.nt_stores),
                f"{traffic_swnt * 100:+.0f}%",
                f"{traffic_nts * 100:+.0f}%",
                f"{base.cycles / swnt.cycles:.3f}x",
                f"{base.cycles / nts.cycles:.3f}x",
            )
        )
    return rows, any_improved


def test_nt_stores(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 1.0)
    rows, any_improved = benchmark.pedantic(_run, args=(scale,), rounds=1, iterations=1)
    text = render_table(
        ("benchmark", "#NT stores", "traffic SW+NT", "traffic +MOVNT",
         "speedup SW+NT", "speedup +MOVNT"),
        rows,
        title="Extension: non-temporal stores on top of Soft.Pref.+NT (AMD)",
    )
    save_artifact(results_dir, "nt_stores.txt", text)
    # at least one store-heavy benchmark converts stores and saves bytes
    assert any(r[1] > 0 for r in rows)
    assert any_improved
