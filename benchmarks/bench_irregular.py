"""Irregular-workload benchmark: graph kernels under four prefetch regimes.

Runs the graph benchmark suite (CSR page-rank push, BFS frontier
expansion, hash-join probe) through the cache hierarchy under

* ``baseline`` — no prefetching,
* ``ghb``      — a generic GHB stride hardware prefetcher (the strongest
  conventional per-core baseline on these kernels),
* ``hwx``      — the cross-core LLC helper prefetcher resolving
  ``A[B[i+d]]`` from the seeded index arrays,
* ``swi``      — the two-instruction indirect software rewrite
  (``prefetch B[i+d]; prefetch A[B[i+d]]``) planned by the real
  analysis pipeline,

and publishes per-workload speedups and LLC demand-miss reductions as
an artifact.

Two properties gate, on the pair-bearing kernels (pagerank, hashjoin):

* **hwx beats the hardware baseline** — the helper prefetcher's speedup
  must strictly exceed the GHB's: resolving the indirection is worth
  more than chasing its stride residue;
* **swi beats the hardware baseline** — the indirect rewrite must
  likewise beat the GHB.

``bfs`` carries no ``A[B[i]]`` pair, so the helper is silent there by
design; its row is reported but not gated.

``REPRO_BENCH_SCALE`` scales trip counts (default 1.0).
"""

from __future__ import annotations

from conftest import save_artifact

from repro.api import ExperimentSpec
from repro.cachesim import CacheHierarchy
from repro.config import get_machine
from repro.experiments import runner
from repro.experiments.tables import render_table
from repro.hwpref import GHBPrefetcher, NullPrefetcher, cross_core_prefetcher_for
from repro.isa import execute_program, insert_prefetches
from repro.workloads import build_program, workload_seed

MACHINE = "amd-phenom-ii"
GATED = ("pagerank", "hashjoin")  # pair-bearing kernels
WORKLOADS = ("pagerank", "bfs", "hashjoin")


def _run(machine, execution, prefetcher):
    h = CacheHierarchy(machine, prefetcher=prefetcher)
    return h.run(
        execution.trace,
        work_per_memop=execution.work_per_memop,
        mlp=execution.mlp,
    )


def _rows(machine, scale):
    rows = {}
    for name in WORKLOADS:
        program = build_program(name, scale=scale)
        seed = workload_seed(name, "ref")
        execution = execute_program(program, seed=seed)
        # swi: the real pipeline's indirect plan applied to the program.
        spec = ExperimentSpec(name, MACHINE, "swi", "ref", scale)
        plan = runner.plan_for_spec(spec)
        swi_exec = execute_program(insert_prefetches(program, plan), seed=seed)
        rows[name] = {
            "baseline": _run(machine, execution, NullPrefetcher()),
            "ghb": _run(machine, execution, GHBPrefetcher()),
            "hwx": _run(machine, execution, cross_core_prefetcher_for(program)),
            "swi": _run(machine, swi_exec, NullPrefetcher()),
        }
    return rows


def test_irregular_prefetching(bench_scale, results_dir):
    machine = get_machine(MACHINE)
    scale = 0.25 * bench_scale  # full graph kernels are ~500k refs each
    rows = _rows(machine, scale)

    table_rows = []
    speedups = {}
    for name in WORKLOADS:
        stats = rows[name]
        base = stats["baseline"]
        cells = [name if name in GATED else f"{name} (no pairs)"]
        speedups[name] = {}
        for config in ("ghb", "hwx", "swi"):
            s = stats[config]
            speedup = base.cycles / s.cycles
            miss_cut = 1.0 - s.llc.misses / max(1, base.llc.misses)
            speedups[name][config] = speedup
            cells.append(f"{speedup:.3f}x / {100 * miss_cut:+.1f}%")
        table_rows.append(tuple(cells))

    artifact = render_table(
        ("workload", "ghb", "hwx (cross-core)", "swi (indirect rewrite)"),
        table_rows,
        title=(
            "Irregular prefetching: speedup vs no-prefetch baseline and "
            f"LLC miss reduction ({MACHINE}, scale {scale:g})"
        ),
    )
    save_artifact(results_dir, "bench_irregular.txt", artifact)

    for name in GATED:
        ghb, hwx, swi = (speedups[name][c] for c in ("ghb", "hwx", "swi"))
        assert hwx > ghb, (
            f"{name}: cross-core helper does not beat the GHB baseline "
            f"({hwx:.3f}x <= {ghb:.3f}x)"
        )
        assert swi > ghb, (
            f"{name}: indirect rewrite does not beat the GHB baseline "
            f"({swi:.3f}x <= {ghb:.3f}x)"
        )
