"""Coordinated-prefetching benchmark: fair speedup on contended mixes.

Draws seeded synthetic four-app mixes (the coordinator's training
distribution, but a disjoint seed), solves each with the analytic
contention model under three regimes — the uncoordinated static
back-off curve, the :class:`HeuristicCoordinator`, and the bundled
:class:`RLCoordinator` policy — and publishes per-contention-class mean
fair speedups as an artifact.

Two properties gate:

* **no regression** — the heuristic's mean fair speedup must not fall
  below the uncoordinated static curve's on *any* contention class;
* **high-contention win** — on the most contended class (where
  coordination is the paper's whole argument) the heuristic must
  strictly improve, and the RL policy must not lose to the heuristic's
  baseline requirement either.

``REPRO_BENCH_MIXES`` scales the mix count (default 180).
"""

from __future__ import annotations

import statistics

import numpy as np
from conftest import save_artifact

from repro.config import get_machine
from repro.experiments.tables import render_table
from repro.multicore.contention import solve_mix
from repro.multicore.coordinator import (
    HeuristicCoordinator,
    RLCoordinator,
    _fair_speedup,
    _synthetic_profile,
)

MACHINE = "amd-phenom-ii"
SEED = 2014  # disjoint from the bundled policy's training seed
CORES = 4


def _mix_rows(machine, count: int) -> list[tuple[float, float, float, float]]:
    """(offered rho, static fs, heuristic fs, rl fs) per mix, sorted."""
    mu = machine.bytes_per_cycle() / machine.line_bytes
    heuristic = HeuristicCoordinator()
    rl = RLCoordinator.default()
    rng = np.random.default_rng(SEED)
    rows = []
    for _ in range(count):
        apps = [_synthetic_profile(rng, machine, f"a{i}") for i in range(CORES)]
        offered = sum(a.dram_lines / a.cycles_alone for a in apps) / mu
        rows.append(
            (
                offered,
                _fair_speedup(solve_mix(machine, apps)),
                _fair_speedup(solve_mix(machine, apps, coordinator=heuristic)),
                _fair_speedup(solve_mix(machine, apps, coordinator=rl)),
            )
        )
    rows.sort()
    return rows


def test_coordination_fair_speedup(bench_mixes, results_dir):
    machine = get_machine(MACHINE)
    count = max(30, bench_mixes)
    rows = _mix_rows(machine, count)

    third = len(rows) // 3
    classes = [
        ("low", rows[:third]),
        ("mid", rows[third : 2 * third]),
        ("high", rows[2 * third :]),
    ]

    table_rows = []
    summary = {}
    for label, chunk in classes:
        static = statistics.mean(r[1] for r in chunk)
        heur = statistics.mean(r[2] for r in chunk)
        rl = statistics.mean(r[3] for r in chunk)
        wins = sum(1 for r in chunk if r[2] >= r[1] - 1e-12)
        summary[label] = (static, heur, rl)
        table_rows.append(
            (
                label,
                f"{statistics.mean(r[0] for r in chunk):.2f}",
                f"{static:.4f}",
                f"{heur:.4f} ({heur - static:+.4f})",
                f"{rl:.4f} ({rl - static:+.4f})",
                f"{wins}/{len(chunk)}",
            )
        )

    artifact = render_table(
        (
            "contention",
            "offered rho",
            "static",
            "heuristic",
            "rl",
            "heur wins",
        ),
        table_rows,
        title=(
            f"Coordinated prefetching: mean fair speedup over {len(rows)} "
            f"synthetic 4-app mixes ({MACHINE}, seed {SEED})"
        ),
    )
    save_artifact(results_dir, "coordination_fair_speedup.txt", artifact)

    # Gate 1: the heuristic never regresses a contention class.
    for label, (static, heur, _) in summary.items():
        assert heur >= static - 1e-9, (
            f"heuristic regressed fair speedup on {label}-contention mixes: "
            f"{heur:.4f} < {static:.4f}"
        )
    # Gate 2: strict improvement where contention is highest.
    static_high, heur_high, rl_high = summary["high"]
    assert heur_high > static_high, (
        f"heuristic does not improve high-contention mixes: "
        f"{heur_high:.4f} <= {static_high:.4f}"
    )
    assert rl_high >= static_high, (
        f"rl policy regressed high-contention mixes: "
        f"{rl_high:.4f} < {static_high:.4f}"
    )
