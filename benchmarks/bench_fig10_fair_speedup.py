"""Regenerates paper Fig. 10: Fair-Speedup bars (both machines, both input regimes)."""

from conftest import save_artifact

from repro.experiments.fig10_fair_speedup import fair_speedup_from, render_fig10
from repro.experiments.fig7_mixes import run_fig7

MACHINES = ("amd-phenom-ii", "intel-i7-2600k")


def _compute(bench_mixes, bench_scale):
    cells = []
    for machine in MACHINES:
        orig = run_fig7(machine, n_mixes=bench_mixes, scale=bench_scale)
        diff = run_fig7(machine, n_mixes=bench_mixes, scale=bench_scale, vary_inputs=True)
        cells.append(fair_speedup_from(orig, "orig"))
        cells.append(fair_speedup_from(diff, "diff-in"))
    return cells


def test_fig10_fair_speedup(benchmark, bench_scale, bench_mixes, results_dir):
    cells = benchmark.pedantic(
        _compute, args=(bench_mixes, bench_scale), rounds=1, iterations=1
    )
    save_artifact(results_dir, "fig10_fair_speedup.txt", render_fig10(cells))

    for c in cells:
        benchmark.extra_info[f"{c.machine}/{c.inputs}/sw"] = round(c.sw_fs, 4)
        benchmark.extra_info[f"{c.machine}/{c.inputs}/hw"] = round(c.hw_fs, 4)
        # Paper Fig 10: the software scheme's Fair-Speedup exceeds
        # hardware prefetching's in every column.
        assert c.sw_fs > c.hw_fs
        assert c.sw_fs > 1.0
