"""Regenerates paper Fig. 12: parallel workloads at 1/2/4 threads."""

from conftest import save_artifact

from repro.experiments.fig12_parallel import render_fig12, run_fig12


def test_fig12_parallel(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 0.5)  # direct 4-core sims; keep tractable
    cells = benchmark.pedantic(
        run_fig12, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, "fig12_parallel.txt", render_fig12(cells))

    by_key = {(c.benchmark, c.threads): c for c in cells}
    cg4 = by_key[("cg", 4)]
    fma4 = by_key[("fma3d", 4)]
    benchmark.extra_info["cg_x4_sw"] = round(cg4.speedup["swnt"], 3)
    benchmark.extra_info["cg_x4_hw"] = round(cg4.speedup["hw"], 3)

    # Paper §VII-E: software prefetching wins where bandwidth saturates
    # (cg at 4 threads) and is comparable on the compute-bound programs.
    assert cg4.speedup["swnt"] > cg4.speedup["hw"]
    assert abs(fma4.speedup["swnt"] - fma4.speedup["hw"]) / fma4.speedup["hw"] < 0.30
    # every configuration scales with threads
    for name in ("swim", "cg", "fma3d", "dc"):
        assert by_key[(name, 4)].speedup["swnt"] > by_key[(name, 1)].speedup["swnt"]
