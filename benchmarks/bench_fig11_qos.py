"""Regenerates paper Fig. 11: QoS degradation bars."""

from conftest import save_artifact

from repro.experiments.fig11_qos import qos_from, render_fig11
from repro.experiments.fig7_mixes import run_fig7

MACHINES = ("amd-phenom-ii", "intel-i7-2600k")


def _compute(bench_mixes, bench_scale):
    cells = []
    for machine in MACHINES:
        orig = run_fig7(machine, n_mixes=bench_mixes, scale=bench_scale)
        diff = run_fig7(machine, n_mixes=bench_mixes, scale=bench_scale, vary_inputs=True)
        cells.append(qos_from(orig, "orig"))
        cells.append(qos_from(diff, "diff-in"))
    return cells


def test_fig11_qos(benchmark, bench_scale, bench_mixes, results_dir):
    cells = benchmark.pedantic(
        _compute, args=(bench_mixes, bench_scale), rounds=1, iterations=1
    )
    save_artifact(results_dir, "fig11_qos.txt", render_fig11(cells))

    for c in cells:
        benchmark.extra_info[f"{c.machine}/{c.inputs}/sw"] = round(c.sw_qos, 4)
        benchmark.extra_info[f"{c.machine}/{c.inputs}/hw"] = round(c.hw_qos, 4)
        # QoS is a non-positive metric; the software scheme degrades it
        # less than hardware prefetching in every column (paper Fig 11).
        assert c.sw_qos <= 0.0 and c.hw_qos <= 0.0
        assert c.sw_qos >= c.hw_qos
