"""Regenerates paper Fig. 3: miss ratio modelling for mcf."""

from conftest import save_artifact

from repro.experiments.fig3_mrc import render_fig3, run_fig3


def test_fig3_mrc(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_fig3, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, "fig3_mrc.txt", render_fig3(result))

    app = result.application
    hot = result.hot_load
    # LRU miss ratio curves are non-increasing with cache size.
    assert all(a >= b - 1e-9 for a, b in zip(app.ratios, app.ratios[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(hot.ratios, hot.ratios[1:]))
    # The curve drops substantially across the modelled range (the
    # paper's mcf curve falls from ~45 % toward ~5 %).
    assert app.ratios[0] > app.ratios[-1] + 0.10
    benchmark.extra_info["app_mr_8k"] = round(float(app.ratios[0]), 3)
    benchmark.extra_info["app_mr_8M"] = round(float(app.ratios[-1]), 3)
