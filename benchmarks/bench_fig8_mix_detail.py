"""Regenerates paper Fig. 8: the cigar/gcc/lbm/libquantum mix on Intel."""

from conftest import save_artifact

from repro.experiments.fig8_mix_detail import render_fig8, run_fig8


def test_fig8_mix_detail(benchmark, bench_scale, results_dir):
    # The direct four-core simulation is the most expensive single run;
    # half scale keeps it tractable while preserving steady-state shape.
    scale = min(bench_scale, 0.5)
    result = benchmark.pedantic(
        run_fig8, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, "fig8_mix_detail.txt", render_fig8(result))

    sw_avg = sum(result.speedups["swnt"]) / len(result.speedups["swnt"])
    hw_avg = sum(result.speedups["hw"]) / len(result.speedups["hw"])
    benchmark.extra_info["sw_avg_speedup"] = round(sw_avg, 4)
    benchmark.extra_info["hw_avg_speedup"] = round(hw_avg, 4)
    benchmark.extra_info["sw_bw_gbs"] = round(result.bandwidth["swnt"], 2)
    benchmark.extra_info["hw_bw_gbs"] = round(result.bandwidth["hw"], 2)

    # Paper: the software mix achieves higher throughput while drawing
    # *less* bandwidth than the hardware-prefetched mix (10 vs 13.6 GB/s).
    assert sw_avg > hw_avg
    assert result.bandwidth["swnt"] < result.bandwidth["hw"]
