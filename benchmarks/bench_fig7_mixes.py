"""Regenerates paper Fig. 7: 180 mixed workloads on both machines."""

import pytest
from conftest import save_artifact

from repro.experiments.fig7_mixes import fig7_summary, render_fig7, run_fig7


@pytest.mark.parametrize("machine", ["amd-phenom-ii", "intel-i7-2600k"])
def test_fig7_mixes(benchmark, bench_scale, bench_mixes, results_dir, machine):
    result = benchmark.pedantic(
        run_fig7,
        args=(machine,),
        kwargs={"n_mixes": bench_mixes, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    save_artifact(results_dir, f"fig7_mixes_{machine}.txt", render_fig7(result))

    summary = fig7_summary(result)
    for key, value in summary.items():
        benchmark.extra_info[key] = round(value, 4)

    # Paper's headline results, as shapes:
    #  - software prefetching beats hardware prefetching on average;
    #  - it never slows a mix down;
    #  - its traffic is lower than hardware prefetching's in (almost)
    #    every mix.
    assert summary["sw_avg_speedup"] > summary["hw_avg_speedup"]
    assert summary["sw_min_speedup"] > -0.01
    assert summary["sw_traffic_always_better"] > 0.90
    assert summary["sw_avg_traffic"] < summary["hw_avg_traffic"]
