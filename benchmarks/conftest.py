"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
writes its ASCII rendering to ``benchmarks/results/``.  Scale and mix
count can be reduced for quick runs:

* ``REPRO_BENCH_SCALE``  — trip-count multiplier (default 1.0; the
  calibrated workload sizes).
* ``REPRO_BENCH_MIXES``  — number of random mixes (default 180, as in
  the paper).
* ``REPRO_BENCH_JOBS``   — worker processes for the experiment engine
  (default 1: serial, as the timings in ``results/`` were recorded).
* ``REPRO_BENCH_CACHE``  — set to ``1`` to enable the persistent result
  cache (default off so recorded timings measure real simulation).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def bench_engine():
    """Install the benchmark harness's process-wide experiment engine."""
    from repro.api import configure, reset_default_engine

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    use_cache = os.environ.get("REPRO_BENCH_CACHE", "0") == "1"
    engine = configure(jobs=jobs, use_cache=use_cache)
    yield engine
    reset_default_engine()


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_mixes() -> int:
    return int(os.environ.get("REPRO_BENCH_MIXES", "180"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> None:
    """Write one rendered table/figure and echo it to stdout."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
