"""Extension benchmark: online re-optimisation and phase-aware sampling.

Not a paper artefact — quantifies the two extensions the paper
motivates: the dynamic-rewriting loop (§I) and the phase-guided
profiling its sampler builds on (Sembrant et al., CGO'12).
"""

import numpy as np
from conftest import save_artifact

from repro.cachesim import CacheHierarchy
from repro.config import amd_phenom_ii
from repro.core import OnlineOptimizer, PrefetchOptimizer, apply_prefetch_plan
from repro.experiments.tables import render_table
from repro.sampling import RuntimeSampler, phase_aware_sample
from repro.trace import MemoryTrace
from repro.trace.synthesis import chase_pattern, strided_pattern


def _phased_trace(n_each, seed=3):
    """chase -> stream -> chase -> stream (two alternating phases)."""
    rng = np.random.default_rng(seed)
    parts = []
    for rep in range(2):
        parts.append(
            MemoryTrace.loads(
                np.zeros(n_each, np.int64),
                chase_pattern(rng, 0, 50_000, n_each),
            )
        )
        parts.append(
            MemoryTrace.loads(
                np.ones(n_each, np.int64),
                strided_pattern((1 << 31) + rep * (n_each * 16), n_each, 16),
            )
        )
    return MemoryTrace.concat(parts)


def _run_online(scale):
    machine = amd_phenom_ii()
    n = int(120_000 * scale)
    trace = _phased_trace(n)

    base = CacheHierarchy(machine).run(trace, work_per_memop=6.0, mlp=4.0)

    static_sampling = RuntimeSampler(rate=5e-3, seed=1).sample(trace[: n])
    static_plan = PrefetchOptimizer(machine).analyze(static_sampling)
    static = CacheHierarchy(machine).run(
        apply_prefetch_plan(trace, static_plan), work_per_memop=6.0, mlp=4.0
    )

    online = OnlineOptimizer(machine, window_refs=max(10_000, n // 3), history_windows=1)
    result = online.run(trace, work_per_memop=6.0, mlp=4.0)
    return base, static, result


def test_online_adaptation(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 1.0)
    base, static, result = benchmark.pedantic(
        _run_online, args=(scale,), rounds=1, iterations=1
    )
    rows = [
        ("no prefetching", f"{base.cycles:.0f}", "1.000x"),
        (
            "static plan (phase-1 profile)",
            f"{static.cycles:.0f}",
            f"{base.cycles / static.cycles:.3f}x",
        ),
        (
            f"online ({result.plan_changes()} plan changes)",
            f"{result.stats.cycles:.0f}",
            f"{base.cycles / result.stats.cycles:.3f}x",
        ),
    ]
    text = render_table(
        ("configuration", "cycles", "speedup"),
        rows,
        title="Extension: online adaptation across phases (AMD)",
    )
    save_artifact(results_dir, "online_adaptation.txt", text)
    # the adaptive loop must beat both no-prefetching and the stale
    # static plan on a phase-changing program
    assert result.stats.cycles < base.cycles
    assert result.stats.cycles < static.cycles * 1.02


def test_phase_aware_sampling_efficiency(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 1.0)
    n = int(120_000 * scale)
    trace = _phased_trace(n)

    def run():
        return phase_aware_sample(trace, window_refs=max(10_000, n // 2), rate=5e-3)

    profile = benchmark.pedantic(run, rounds=1, iterations=1)
    windows = len(profile.phase_of_window)
    text = render_table(
        ("metric", "value"),
        [
            ("windows", windows),
            ("phases detected", profile.n_phases),
            ("windows sampled", len(profile.sampled_windows)),
            ("reuse samples", len(profile.sampling.reuse)),
        ],
        title="Extension: phase-aware sampling (ABAB program)",
    )
    save_artifact(results_dir, "phase_sampling.txt", text)
    # ABAB: 2 phases detected, only ~2 of 4+ windows sampled
    assert profile.n_phases <= windows // 2 + 1
    assert len(profile.sampled_windows) < windows
