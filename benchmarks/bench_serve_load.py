"""Load benchmark for the advisor daemon (`repro serve`).

Boots a real `AdvisorServer` on a unix socket, drives it with
concurrent clients spread over several tenants, and publishes a
throughput / latency-percentile artifact.  Two properties gate:

* **scale** — at least ``REPRO_BENCH_SERVE_REQUESTS`` (default 120,
  gate applies at >=100) requests served concurrently, all ``ok``;
* **warm-path latency** — warm-cache served p50 under 10x one warm
  one-shot ``api.run`` call (fresh memo, warm persistent cache — what
  a one-shot CLI invocation of the same cell pays).

The served responses are additionally checked byte-identical to the
one-shot :func:`repro.api.advise` path for the same requests — the
daemon must never trade correctness for throughput.
"""

from __future__ import annotations

import asyncio
import os
import statistics
import threading
import time

from conftest import save_artifact

from repro import api
from repro.api import AdvisorRequest, ExperimentSpec
from repro.experiments import runner
from repro.experiments.tables import render_table
from repro.serve import protocol
from repro.serve.client import AdvisorClient
from repro.serve.daemon import AdvisorServer, ServeOptions

WORKLOAD = "libquantum"
MACHINE = "amd-phenom-ii"
CONFIG = "swnt"
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "120"))
CLIENTS = 12
TENANTS = ("alpha", "beta", "gamma", "delta")
MAX_WARM_P50_RATIO = 10.0
GATED = N_REQUESTS >= 100


def _request(i: int, scale: float) -> AdvisorRequest:
    return AdvisorRequest(
        workload=WORKLOAD,
        machine=MACHINE,
        config=CONFIG,
        scale=scale,
        tenant=TENANTS[i % len(TENANTS)],
        request_id=f"load-{i}",
    )


def _baseline_warm_run(spec: ExperimentSpec, tmp_path) -> float:
    """One warm one-shot `api.run`: cold memo, warm persistent cache."""
    api.configure(jobs=1, use_cache=True, cache_dir=str(tmp_path / "oneshot"))
    try:
        api.run(spec)  # populate the persistent cache
        best = float("inf")
        for _ in range(3):
            runner.clear_memo()
            start = time.perf_counter()
            api.run(spec)
            best = min(best, time.perf_counter() - start)
    finally:
        api.reset_default_engine()
    return best


def _percentile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def test_serve_load(bench_scale, results_dir, tmp_path):
    spec = ExperimentSpec(WORKLOAD, MACHINE, CONFIG, scale=bench_scale)
    warm_single = _baseline_warm_run(spec, tmp_path)

    socket_path = str(tmp_path / "advisor.sock")
    options = ServeOptions(
        unix_socket=socket_path,
        jobs=1,
        shards=2,
        queue_capacity=max(64, N_REQUESTS),
        batch_linger=0.0,
        use_cache=True,
        cache_dir=str(tmp_path / "serve-cache"),
    )

    loop = asyncio.new_event_loop()
    started = threading.Event()
    box: dict = {}

    def run_server() -> None:
        asyncio.set_event_loop(loop)
        server = AdvisorServer(options)
        loop.run_until_complete(server.start())
        box["server"] = server
        started.set()
        loop.run_forever()
        loop.close()

    server_thread = threading.Thread(target=run_server, daemon=True)
    server_thread.start()
    assert started.wait(timeout=60)
    server = box["server"]

    latencies: list[float] = []
    responses: dict[int, object] = {}
    errors: list = []
    lock = threading.Lock()
    per_client = N_REQUESTS // CLIENTS
    total = per_client * CLIENTS

    def client_turn(client_index: int) -> None:
        try:
            with AdvisorClient(unix_socket=socket_path, timeout=600) as client:
                for j in range(per_client):
                    i = client_index * per_client + j
                    start = time.perf_counter()
                    response = client.advise(_request(i, bench_scale))
                    elapsed = time.perf_counter() - start
                    with lock:
                        latencies.append(elapsed)
                        responses[i] = response
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append((client_index, exc))

    # Warm pass: the first request computes the cell; everything after
    # measures the warm path the gate is about.
    with AdvisorClient(unix_socket=socket_path, timeout=600) as client:
        assert client.advise(_request(0, bench_scale)).ok

    threads = [
        threading.Thread(target=client_turn, args=(c,)) for c in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start

    try:
        assert not errors, errors
        assert len(responses) == total
        assert all(r.status == "ok" for r in responses.values())

        # Byte-identity spot check against the one-shot path.
        for i in (0, total // 2, total - 1):
            one_shot = api.advise(_request(i, bench_scale))
            assert protocol.encode_response(responses[i]) == protocol.encode_response(
                one_shot
            ), f"served response {i} diverged from one-shot advise"

        ordered = sorted(latencies)
        p50 = statistics.median(ordered)
        ratio = p50 / max(warm_single, 1e-9)
        if GATED:
            assert total >= 100, f"only {total} concurrent requests served"
            assert ratio < MAX_WARM_P50_RATIO, (
                f"warm served p50 {p50 * 1e3:.2f} ms is {ratio:.2f}x one warm "
                f"api.run call ({warm_single * 1e3:.2f} ms); bound "
                f"{MAX_WARM_P50_RATIO}x"
            )

        rows = [
            ("requests served (all ok)", f"{total}"),
            ("concurrent clients x tenants", f"{CLIENTS} x {len(TENANTS)}"),
            ("wall clock", f"{wall:.2f} s"),
            ("throughput", f"{total / wall:.0f} req/s"),
            ("latency p50", f"{p50 * 1e3:.2f} ms"),
            ("latency p90", f"{_percentile(ordered, 0.90) * 1e3:.2f} ms"),
            ("latency p99", f"{_percentile(ordered, 0.99) * 1e3:.2f} ms"),
            ("latency max", f"{ordered[-1] * 1e3:.2f} ms"),
            ("one warm api.run (baseline)", f"{warm_single * 1e3:.2f} ms"),
            ("p50 / baseline", f"{ratio:.3f}x (bound {MAX_WARM_P50_RATIO}x)"),
            ("batches dispatched", f"{server.pool.batches}"),
            ("one-shot byte-identity", "ok (3 spot checks)"),
        ]
        text = render_table(
            ("metric", "value"),
            rows,
            title=(
                f"Advisor daemon load — {WORKLOAD}/{MACHINE}/{CONFIG}, "
                f"scale {bench_scale:g}, unix socket, jobs=1"
                + ("" if GATED else " (reduced scale: gates skipped)")
            ),
        )
        save_artifact(results_dir, "serve_load.txt", text)
    finally:
        asyncio.run_coroutine_threadsafe(server.shutdown(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        server_thread.join(timeout=30)
