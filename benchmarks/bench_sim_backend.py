"""Speedup benchmark: fast cache-simulation backend vs the reference.

Times the functional simulator over a synthetic 500k-event mixed trace
(streaming + hot working set + random, the paper suite's access-pattern
archetypes) on the AMD Phenom II cache levels, under both backends, and
asserts they produce bit-identical results.  The L1 row is the headline:
the functional simulator's production users (Table I coverage, StatStack
validation) run it on L1-sized caches over the full demand stream.

The artifact goes to ``benchmarks/results/sim_backend_speedup.txt``.
``REPRO_BENCH_SIM_EVENTS`` shrinks the trace (CI smoke uses 100k); the
>=5x L1 speedup gate only applies at full scale, where it was measured.
"""

from __future__ import annotations

import os
import time

import numpy as np
from conftest import save_artifact

from repro.cachesim import CacheHierarchy, FunctionalCacheSim
from repro.config import get_machine
from repro.experiments.tables import render_table
from repro.trace import MemoryTrace

EVENTS = int(os.environ.get("REPRO_BENCH_SIM_EVENTS", "500000"))
MACHINE = "amd-phenom-ii"


def _mixed_trace(n: int) -> MemoryTrace:
    rng = np.random.default_rng(42)
    stream = (np.arange(n) * 64) % (8 << 20)
    hot = rng.integers(0, 64 << 10, n) & ~63
    rand = rng.integers(0, 32 << 20, n) & ~63
    pick = rng.random(n)
    addr = np.where(pick < 0.5, stream, np.where(pick < 0.85, hot, rand))
    pc = rng.integers(0, 512, n)
    return MemoryTrace(pc, addr.astype(np.int64), np.zeros(n, np.int64))


def _time_functional(config, trace, backend):
    best, stats = float("inf"), None
    for _ in range(3):
        sim = FunctionalCacheSim(config, backend=backend)
        t0 = time.perf_counter()
        stats = sim.run(trace)
        best = min(best, time.perf_counter() - t0)
    return best, stats, sim


def _run_backend_comparison():
    machine = get_machine(MACHINE)
    trace = _mixed_trace(EVENTS)
    rows = []
    speedups = {}
    for config in (machine.l1, machine.l2, machine.llc):
        t_ref, s_ref, sim_ref = _time_functional(config, trace, "reference")
        t_fast, s_fast, sim_fast = _time_functional(config, trace, "fast")
        assert np.array_equal(sim_ref.last_miss, sim_fast.last_miss)
        assert s_ref.accesses == s_fast.accesses
        assert s_ref.misses == s_fast.misses
        speedups[config.name] = t_ref / t_fast
        rows.append(
            (
                f"functional {config.name} ({config.ways}-way)",
                f"{t_ref:.3f}s",
                f"{t_fast:.3f}s",
                f"{t_ref / t_fast:.1f}x",
            )
        )

    # End-to-end hierarchy run under both backends, same parity contract.
    from dataclasses import replace

    times = {}
    for backend in ("reference", "fast"):
        m = replace(machine, sim_backend=backend)
        best = float("inf")
        for _ in range(2):
            h = CacheHierarchy(m)
            t0 = time.perf_counter()
            stats = h.run(trace, work_per_memop=2.0, mlp=2.0)
            best = min(best, time.perf_counter() - t0)
        times[backend] = (best, stats)
    assert times["reference"][1].cycles == times["fast"][1].cycles
    rows.append(
        (
            "hierarchy L1+L2+LLC+timing",
            f"{times['reference'][0]:.3f}s",
            f"{times['fast'][0]:.3f}s",
            f"{times['reference'][0] / times['fast'][0]:.1f}x",
        )
    )
    return rows, speedups


def test_sim_backend_speedup(benchmark, results_dir):
    rows, speedups = benchmark.pedantic(
        _run_backend_comparison, rounds=1, iterations=1
    )
    text = render_table(
        ("simulation", "reference", "fast", "speedup"),
        rows,
        title=f"Fast cache-simulation backend — {MACHINE}, "
        f"{EVENTS:,}-event mixed trace (bit-identical results)",
    )
    save_artifact(results_dir, "sim_backend_speedup.txt", text)
    if EVENTS >= 500_000:
        assert speedups["L1"] >= 5.0, f"L1 speedup regressed: {speedups['L1']:.1f}x"
