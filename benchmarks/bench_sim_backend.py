"""Speedup benchmark: fast cache-simulation backend vs the reference.

Two families of rows, both gated on bit-identity with the reference
simulator:

* **functional** — the single-level simulator on the AMD Phenom II
  cache levels over a mixed 500k-event trace.  The L1 row is the
  headline for the paper's Table I / StatStack pipelines and carries a
  >=5x gate at full scale.
* **end-to-end** — the full ``CacheHierarchy`` (L1+L2+LLC, timing,
  bandwidth model) with a hardware prefetcher attached, over a
  SPEC-like trace (hot L1-resident set, warm L2 set, strided word
  streams).  The GHB row carries the >=4x end-to-end gate: GHB is the
  most expensive reference prefetcher, so it is the configuration
  where batch observation matters most.

The artifact goes to ``benchmarks/results/sim_backend_speedup.txt``.
``REPRO_BENCH_SIM_EVENTS`` shrinks the trace for local smoke runs; the
speedup gates only apply at full scale, where they were measured (CI
runs full scale).
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np
from conftest import save_artifact

from repro.cachesim import BandwidthModel, CacheHierarchy, FunctionalCacheSim
from repro.config import get_machine
from repro.experiments.tables import render_table
from repro.hwpref import GHBPrefetcher, StreamerPrefetcher
from repro.trace import MemOp, MemoryTrace

EVENTS = int(os.environ.get("REPRO_BENCH_SIM_EVENTS", "500000"))
MACHINE = "amd-phenom-ii"


def _mixed_trace(n: int) -> MemoryTrace:
    rng = np.random.default_rng(42)
    stream = (np.arange(n) * 64) % (8 << 20)
    hot = rng.integers(0, 64 << 10, n) & ~63
    rand = rng.integers(0, 32 << 20, n) & ~63
    pick = rng.random(n)
    addr = np.where(pick < 0.5, stream, np.where(pick < 0.85, hot, rand))
    pc = rng.integers(0, 512, n)
    return MemoryTrace(pc, addr.astype(np.int64), np.zeros(n, np.int64))


def _spec_like_trace(n: int) -> MemoryTrace:
    """SPEC-archetype demand trace: hot set, warm set, word streams.

    70% of accesses hit a 32KB hot working set (L1-resident on the AMD
    machine), 8% a 256KB warm set (L2 hits), 22% walk thirteen
    PC-correlated streams with 8-32 byte word strides — the
    constant-delta pattern hardware prefetchers exist for.
    """
    rng = np.random.default_rng(42)
    hot = rng.integers(0, 512, n) * 64
    warm = rng.integers(0, 4096, n) * 64 + (1 << 24)
    n_streams = 13
    sid = rng.integers(0, n_streams, n)
    strides = 8 * (1 + (sid % 4))
    prog = np.zeros(n, dtype=np.int64)
    for s in range(n_streams):
        m = sid == s
        prog[m] = np.arange(m.sum())
    stream = (2 << 24) + sid * (1 << 20) + prog * strides
    pick = rng.random(n)
    addr = np.where(pick < 0.70, hot, np.where(pick < 0.78, warm, stream))
    pc = np.where(
        pick < 0.70,
        900 + (hot // 64) % 13,
        np.where(pick < 0.78, 800 + (warm // 64) % 7, 100 + sid),
    )
    op = np.where(rng.random(n) < 0.3, int(MemOp.STORE), int(MemOp.LOAD))
    return MemoryTrace(pc.astype(np.int64), addr.astype(np.int64), op.astype(np.int64))


def _time_functional(config, trace, backend):
    best, stats = float("inf"), None
    for _ in range(3):
        sim = FunctionalCacheSim(config, backend=backend)
        t0 = time.perf_counter()
        stats = sim.run(trace)
        best = min(best, time.perf_counter() - t0)
    return best, stats, sim


def _time_hierarchy(machine, backend, trace, factory):
    m = replace(machine, sim_backend=backend)
    best, stats, hier = float("inf"), None, None
    for _ in range(2):
        bw = BandwidthModel(m.bytes_per_cycle())
        hier = CacheHierarchy(m, prefetcher=factory(), bandwidth=bw)
        t0 = time.perf_counter()
        stats = hier.run(trace, work_per_memop=2.0, mlp=2.0)
        best = min(best, time.perf_counter() - t0)
    return best, stats, hier


_STAT_FIELDS = (
    "sw_prefetches", "sw_useful", "sw_useless", "sw_late",
    "hw_prefetches", "hw_useful", "hw_useless",
    "dram_fills", "nta_fills", "dram_writebacks", "nt_store_writes",
)


def _assert_identical(ref, fast):
    assert ref.cycles == fast.cycles  # bit-identical, not approx
    assert (ref.l1, ref.l2, ref.llc) == (fast.l1, fast.l2, fast.llc)
    for name in _STAT_FIELDS:
        assert getattr(ref, name) == getattr(fast, name), name


def _run_backend_comparison():
    machine = get_machine(MACHINE)
    trace = _mixed_trace(EVENTS)
    rows = []
    speedups = {}
    for config in (machine.l1, machine.l2, machine.llc):
        t_ref, s_ref, sim_ref = _time_functional(config, trace, "reference")
        t_fast, s_fast, sim_fast = _time_functional(config, trace, "fast")
        assert np.array_equal(sim_ref.last_miss, sim_fast.last_miss)
        assert s_ref.accesses == s_fast.accesses
        assert s_ref.misses == s_fast.misses
        speedups[config.name] = t_ref / t_fast
        rows.append(
            (
                f"functional {config.name} ({config.ways}-way)",
                f"{t_ref:.3f}s",
                f"{t_fast:.3f}s",
                f"{t_ref / t_fast:.1f}x",
            )
        )

    # End-to-end hierarchy with hardware prefetcher + bandwidth model.
    spec = _spec_like_trace(EVENTS)
    for label, factory in (("ghb", GHBPrefetcher), ("streamer", StreamerPrefetcher)):
        t_ref, s_ref, _ = _time_hierarchy(machine, "reference", spec, factory)
        t_fast, s_fast, h_fast = _time_hierarchy(machine, "fast", spec, factory)
        _assert_identical(s_ref, s_fast)
        assert h_fast.last_run_path == "batch", h_fast.last_run_path
        speedups[f"e2e-{label}"] = t_ref / t_fast
        rows.append(
            (
                f"hierarchy+bw+{label} prefetcher",
                f"{t_ref:.3f}s",
                f"{t_fast:.3f}s",
                f"{t_ref / t_fast:.1f}x",
            )
        )
    return rows, speedups


def test_sim_backend_speedup(benchmark, results_dir):
    rows, speedups = benchmark.pedantic(
        _run_backend_comparison, rounds=1, iterations=1
    )
    text = render_table(
        ("simulation", "reference", "fast", "speedup"),
        rows,
        title=f"Fast cache-simulation backend — {MACHINE}, "
        f"{EVENTS:,}-event traces (bit-identical results)",
    )
    save_artifact(results_dir, "sim_backend_speedup.txt", text)
    if EVENTS >= 500_000:
        assert speedups["L1"] >= 5.0, f"L1 speedup regressed: {speedups['L1']:.1f}x"
        assert speedups["e2e-ghb"] >= 4.0, (
            f"end-to-end speedup regressed: {speedups['e2e-ghb']:.1f}x"
        )
