"""Regenerates paper Table I: prefetch coverage & minimisation."""

from conftest import save_artifact

from repro.experiments.table1_coverage import render_table1, run_table1


def test_table1_coverage(benchmark, bench_scale, results_dir):
    rows = benchmark.pedantic(
        run_table1, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, "table1_coverage.txt", render_table1(rows))

    avg_mddli = sum(r.mddli_coverage for r in rows) / len(rows)
    avg_stride = sum(r.stride_coverage for r in rows) / len(rows)
    benchmark.extra_info["avg_mddli_coverage"] = round(avg_mddli, 3)
    benchmark.extra_info["avg_stride_coverage"] = round(avg_stride, 3)

    by_name = {r.benchmark: r for r in rows}
    # Shape assertions from the paper's Table I: streaming benchmarks are
    # near-fully covered, pointer chasers are not, and MDDLI never covers
    # less than stride-centric by a wide margin.
    assert by_name["libquantum"].mddli_coverage > 0.60
    assert by_name["lbm"].mddli_coverage > 0.60
    assert by_name["omnetpp"].mddli_coverage < 0.20
    assert by_name["xalan"].mddli_coverage < 0.20
    assert avg_mddli >= avg_stride - 0.02
