"""Ablations of the design choices DESIGN.md calls out.

Not a paper artefact — these quantify how much each knob of the analysis
contributes, using libquantum (streaming, distance-sensitive) and cigar
(short runs, clamp-sensitive) as probes.
"""

from conftest import save_artifact

from repro.cachesim.hierarchy import CacheHierarchy
from repro.config import get_machine
from repro.core.insertion import apply_prefetch_plan
from repro.core.pipeline import OptimizerSettings, PrefetchOptimizer
from repro.experiments.runner import profile_for
from repro.experiments.tables import render_table
from repro.sampling.sampler import RuntimeSampler
from repro.workloads.base import workload_seed

MACHINE = "amd-phenom-ii"


def _speedup_with(name, settings, scale, latency_override=None):
    machine = get_machine(MACHINE)
    profile = profile_for(name, "ref", scale)
    optimizer = PrefetchOptimizer(machine, settings)
    plan = optimizer.analyze(profile.sampling, refs_per_pc=profile.program.refs_per_pc())
    trace = apply_prefetch_plan(profile.execution.trace, plan)
    base = CacheHierarchy(machine).run(
        profile.execution.trace,
        work_per_memop=profile.execution.work_per_memop,
        mlp=profile.execution.mlp,
    )
    opt = CacheHierarchy(machine).run(
        trace,
        work_per_memop=profile.execution.work_per_memop,
        mlp=profile.execution.mlp,
    )
    return base.cycles / opt.cycles, len(plan.decisions)


def _run_ablation(scale):
    rows = []
    # --- stride-dominance threshold (paper: 70 %) ----------------------
    for thr in (0.5, 0.7, 0.9):
        sp, nd = _speedup_with("cigar", OptimizerSettings(dominance_threshold=thr), scale)
        rows.append((f"cigar dominance={thr:.0%}", f"{(sp - 1) * 100:+.1f}%", nd))
    # --- bypass on/off --------------------------------------------------
    for bypass in (True, False):
        sp, nd = _speedup_with(
            "libquantum", OptimizerSettings(enable_bypass=bypass), scale
        )
        rows.append(
            (f"libquantum bypass={'on' if bypass else 'off'}", f"{(sp - 1) * 100:+.1f}%", nd)
        )
    # --- latency (cost/benefit threshold alpha/latency) ----------------
    for lat in (20.0, None, 500.0):
        sp, nd = _speedup_with("xalan", OptimizerSettings(latency=lat), scale)
        label = "model" if lat is None else f"{lat:.0f}cy"
        rows.append((f"xalan latency={label}", f"{(sp - 1) * 100:+.1f}%", nd))
    return rows


def _run_sampling_rate_ablation(scale):
    """Coverage of the plan vs sampling rate (paper uses 1/100k)."""
    machine = get_machine(MACHINE)
    profile = profile_for("gcc", "ref", scale)
    rows = []
    for rate in (2e-2, 2e-3, 2e-4):
        sampler = RuntimeSampler(rate=rate, seed=workload_seed("gcc", "ref") & 0xFFFF, min_samples=0)
        sampling = sampler.sample(profile.execution.trace)
        if len(sampling.reuse) == 0:
            rows.append((f"gcc rate=1/{round(1/rate)}", "no samples", 0))
            continue
        plan = PrefetchOptimizer(machine).analyze(
            sampling, refs_per_pc=profile.program.refs_per_pc()
        )
        rows.append(
            (
                f"gcc rate=1/{round(1/rate)}",
                f"{len(sampling.reuse)} samples",
                len(plan.decisions),
            )
        )
    return rows


def test_ablation_analysis_knobs(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 0.5)
    rows = benchmark.pedantic(_run_ablation, args=(scale,), rounds=1, iterations=1)
    text = render_table(
        ("configuration", "speedup", "#prefetch pcs"),
        rows,
        title="Ablation: analysis thresholds (AMD)",
    )
    save_artifact(results_dir, "ablation_analysis.txt", text)
    assert rows


def test_ablation_sampling_rate(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 0.5)
    rows = benchmark.pedantic(
        _run_sampling_rate_ablation, args=(scale,), rounds=1, iterations=1
    )
    text = render_table(
        ("configuration", "samples", "#prefetch pcs"),
        rows,
        title="Ablation: sampling rate",
    )
    save_artifact(results_dir, "ablation_sampling.txt", text)
    assert rows
