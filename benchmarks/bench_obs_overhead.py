"""Observability overhead: tracing disabled vs enabled, end to end.

Times one 12-cell slice of the evaluation grid (4 workloads x 3
configs) through the full pipeline under two regimes:

* **disabled** — the default: ``obs.span(...)`` returns the shared
  no-op object, so the instrumented hot paths pay one module-flag test
  and nothing else.  The run doubles as a static proof: it asserts
  that **zero** ``Span`` objects were allocated.
* **enabled** — every instrumented site records a real span and the
  metric sites update the registry; this is the tax a ``--trace-out``
  run pays.

Each regime is timed ``REPEATS`` times interleaved and scored by its
best run (wall noise is one-sided), after one untimed warmup.  The
artefact records both walls, the span/metric volume of the enabled
run, and the ratio, which the test bounds at 2 % (plus a small
absolute slack for sub-second grids).
"""

from __future__ import annotations

import time

from conftest import save_artifact

from repro import obs
from repro.api import ExperimentEngine, ExperimentSpec
from repro.experiments import runner
from repro.experiments.tables import render_table

WORKLOADS = ("libquantum", "mcf", "lbm", "soplex")
MACHINE = "amd-phenom-ii"
GRID_CONFIGS = ("baseline", "hw", "swnt")
REPEATS = 3
MAX_ENABLED_RATIO = 1.02


def _timed_run(grid) -> float:
    runner.clear_memo()
    engine = ExperimentEngine(jobs=1, use_cache=False)
    start = time.perf_counter()
    engine.run(grid)
    elapsed = time.perf_counter() - start
    assert engine.stats.computed == len(grid)
    return elapsed


def test_obs_overhead(bench_scale, results_dir):
    grid = ExperimentSpec.grid(
        WORKLOADS, (MACHINE,), GRID_CONFIGS, scales=(bench_scale,)
    )

    obs.disable()
    _timed_run(grid)  # warmup: imports, numpy caches, workload builds

    t_off, t_on = [], []
    spans = n_metrics = 0
    for _ in range(REPEATS):
        obs.disable()
        allocated_before = obs.Span.allocated
        t_off.append(_timed_run(grid))
        # the disabled regime is statically free: not one span object
        assert obs.Span.allocated == allocated_before

        tracer = obs.enable()
        tracer.clear()
        obs.reset_metrics()
        t_on.append(_timed_run(grid))
        spans = len(tracer.finished)
        n_metrics = len(obs.metrics().as_dict())
    obs.disable()
    obs.reset_metrics()

    best_off, best_on = min(t_off), min(t_on)
    ratio = best_on / max(best_off, 1e-9)
    assert spans > 0 and n_metrics > 0
    assert best_on <= best_off * MAX_ENABLED_RATIO + 0.05, (
        f"enabled tracing cost {ratio:.3f}x (> {MAX_ENABLED_RATIO}x bound)"
    )

    rows = [
        ("tracing disabled", f"{best_off:.2f}", f"{best_off / len(grid):.3f}",
         "0 spans allocated"),
        ("tracing enabled", f"{best_on:.2f}", f"{best_on / len(grid):.3f}",
         f"{spans} spans, {n_metrics} metrics"),
        ("overhead (enabled/disabled)", f"{ratio:.3f}x", "", ""),
    ]
    text = render_table(
        ("regime", "wall (s)", "s/cell", "volume"),
        rows,
        title=(
            f"Observability overhead — {len(grid)}-cell grid "
            f"({len(WORKLOADS)} workloads x {len(GRID_CONFIGS)} configs, "
            f"{MACHINE}, scale {bench_scale:g}, jobs=1, "
            f"best of {REPEATS})"
        ),
    )
    save_artifact(results_dir, "obs_overhead.txt", text)
