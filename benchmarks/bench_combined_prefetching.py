"""Regenerates the paper's §VIII-B claim: combining HW+SW prefetching hurts."""

import pytest
from conftest import save_artifact

from repro.experiments.combined_prefetching import render_combined, run_combined


@pytest.mark.parametrize("machine", ["amd-phenom-ii", "intel-i7-2600k"])
def test_combined_prefetching(benchmark, bench_scale, results_dir, machine):
    rows = benchmark.pedantic(
        run_combined, args=(machine,), kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, f"combined_prefetching_{machine}.txt", render_combined(rows))

    hurt = sum(r.combination_hurts for r in rows)
    benchmark.extra_info["hurts_count"] = f"{hurt}/{len(rows)}"
    # Paper: "combining the two can hurt performance in several cases
    # and should be avoided."
    assert hurt >= 3
    # combining also re-inflates traffic over the NT scheme on average
    avg_extra_traffic = sum(r.combined_traffic_vs_swnt for r in rows) / len(rows)
    benchmark.extra_info["avg_extra_traffic"] = round(avg_extra_traffic, 3)
    assert avg_extra_traffic > 0.0
