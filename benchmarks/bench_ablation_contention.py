"""Ablation: analytic contention model vs direct four-core simulation.

Cross-validates the fast path used for the 180-mix sweeps (Figs. 7,
9–11) against the event-interleaved simulator on a handful of mixes:
the models must agree on *ordering* (which configuration wins) and
roughly on magnitude.
"""

from conftest import save_artifact

from repro.experiments.fig8_mix_detail import run_fig8
from repro.experiments.mixes_common import evaluate_mix
from repro.experiments.tables import render_table
from repro.workloads.mixes import generate_mixes

MACHINE = "intel-i7-2600k"


def _compare(scale, n_mixes=3):
    mixes = generate_mixes(count=n_mixes)
    rows = []
    agreements = 0
    for mix in mixes:
        # analytic
        base_a = evaluate_mix(mix, MACHINE, "baseline", scale)
        sw_a = evaluate_mix(mix, MACHINE, "swnt", scale)
        hw_a = evaluate_mix(mix, MACHINE, "hw", scale)
        sw_ws_a = sw_a.weighted_speedup_vs(base_a) - 1.0
        hw_ws_a = hw_a.weighted_speedup_vs(base_a) - 1.0
        # direct
        direct = run_fig8(MACHINE, mix=mix, scale=scale)
        sw_ws_d = sum(direct.speedups["swnt"]) / len(direct.speedups["swnt"])
        hw_ws_d = sum(direct.speedups["hw"]) / len(direct.speedups["hw"])
        same_order = (sw_ws_a > hw_ws_a) == (sw_ws_d > hw_ws_d)
        agreements += same_order
        rows.append(
            (
                "+".join(mix.members),
                f"{sw_ws_a * 100:+.1f}%",
                f"{sw_ws_d * 100:+.1f}%",
                f"{hw_ws_a * 100:+.1f}%",
                f"{hw_ws_d * 100:+.1f}%",
                "yes" if same_order else "NO",
            )
        )
    return rows, agreements, len(mixes)


def test_contention_model_vs_direct_sim(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 0.35)
    rows, agreements, total = benchmark.pedantic(
        _compare, args=(scale,), rounds=1, iterations=1
    )
    text = render_table(
        ("mix", "SW analytic", "SW direct", "HW analytic", "HW direct", "order ok"),
        rows,
        title="Ablation: analytic contention model vs direct 4-core simulation (Intel)",
    )
    save_artifact(results_dir, "ablation_contention.txt", text)
    benchmark.extra_info["order_agreement"] = f"{agreements}/{total}"
    # The fast model must rank SW vs HW like the direct simulator in a
    # clear majority of sampled mixes.
    assert agreements >= total - 1
