"""Engine micro-benchmark: serial vs parallel fan-out, cold vs warm cache.

Measures wall-clock for one 12-cell slice of the evaluation grid
(4 workloads × 1 machine × 3 configs) under three regimes:

* **cold serial** — empty persistent cache, ``jobs=1``;
* **cold parallel** — empty persistent cache, ``jobs=REPRO_BENCH_JOBS``
  (or 2 if unset/1), cells fanned out per profile group;
* **warm cache** — in-process memo cleared, same persistent cache reused:
  every cell must be a disk hit and zero simulations may run.

On a single-core container the parallel row records the fork/pickle
overhead rather than a speedup — the point of the artefact is the
cold-vs-warm ratio and the engine's cache accounting.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import save_artifact

from repro.experiments import runner
from repro.api import ExperimentEngine
from repro.experiments.tables import render_table

WORKLOADS = ("libquantum", "mcf", "lbm", "soplex")
MACHINE = "amd-phenom-ii"
GRID_CONFIGS = ("baseline", "hw", "swnt")


def _timed_run(engine: ExperimentEngine, scale: float) -> float:
    start = time.perf_counter()
    engine.run_grid(WORKLOADS, (MACHINE,), GRID_CONFIGS, scales=(scale,))
    return time.perf_counter() - start


def test_engine_scaling(bench_scale, results_dir):
    jobs = max(2, int(os.environ.get("REPRO_BENCH_JOBS", "2")))
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        runner.clear_memo()
        serial = ExperimentEngine(jobs=1, cache_dir=cache_dir, use_cache=True)
        t_serial = _timed_run(serial, bench_scale)

        # Fresh cache for the parallel cold run so it re-simulates.
        shutil.rmtree(cache_dir)
        runner.clear_memo()
        parallel = ExperimentEngine(jobs=jobs, cache_dir=cache_dir, use_cache=True)
        t_parallel = _timed_run(parallel, bench_scale)
        assert parallel.stats.computed == len(WORKLOADS) * len(GRID_CONFIGS)

        runner.clear_memo()
        warm = ExperimentEngine(jobs=1, cache_dir=cache_dir, use_cache=True)
        t_warm = _timed_run(warm, bench_scale)
        assert warm.stats.computed == 0, "warm cache run must not re-simulate"
        assert warm.stats.disk_hits == len(WORKLOADS) * len(GRID_CONFIGS)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    cells = len(WORKLOADS) * len(GRID_CONFIGS)
    rows = [
        ("cold serial (jobs=1)", f"{t_serial:.2f}", f"{t_serial / cells:.3f}", "12 computed"),
        (
            f"cold parallel (jobs={jobs})",
            f"{t_parallel:.2f}",
            f"{t_parallel / cells:.3f}",
            "12 computed",
        ),
        ("warm cache (jobs=1)", f"{t_warm:.2f}", f"{t_warm / cells:.3f}", "12 disk hits"),
        ("speedup warm vs cold", f"{t_serial / max(t_warm, 1e-9):.0f}x", "", ""),
    ]
    text = render_table(
        ("regime", "wall (s)", "s/cell", "cells"),
        rows,
        title=(
            f"Engine scaling — {cells}-cell grid "
            f"({len(WORKLOADS)} workloads x {len(GRID_CONFIGS)} configs, "
            f"{MACHINE}, scale {bench_scale:g}, {os.cpu_count()} CPU)"
        ),
    )
    save_artifact(results_dir, "engine_scaling.txt", text)
