"""Regenerates paper §IV: StatStack coverage vs functional simulation."""

from conftest import save_artifact

from repro.experiments.statstack_validation import render_validation, run_validation


def test_statstack_validation(benchmark, bench_scale, results_dir):
    rows = benchmark.pedantic(
        run_validation, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, "statstack_validation.txt", render_validation(rows))

    avg_l1 = sum(r.l1_coverage for r in rows) / len(rows)
    avg_l2 = sum(r.l2_coverage for r in rows) / len(rows)
    benchmark.extra_info["avg_l1_coverage"] = round(avg_l1, 3)
    benchmark.extra_info["avg_l2_coverage"] = round(avg_l2, 3)

    # Paper: 88 % of L1 misses and 94 % of L2 misses identified.  The
    # same ordering (larger caches are easier to model) must hold, and
    # coverage must be high.
    assert avg_l1 > 0.70
    assert avg_l2 > 0.75
