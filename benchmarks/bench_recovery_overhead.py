"""Recovery-overhead benchmark: what does crash-safety cost?

Runs the same 12-cell cold grid as ``bench_engine_scaling`` twice —
unjournaled, then under a durable (fsync'd) run journal — and reports
both wall clocks plus the journal's own accounting
(``RunJournal.write_seconds``: the summed wall time of every append +
fsync).

The **gate** is on the precise number, not the noisy one: the journal's
write time must stay ≤ 5 % of the journaled run's wall clock.  The A/B
wall-clock ratio is recorded ungated in the artifact — on a loaded CI
box two back-to-back cold runs of the simulator differ by more than the
journal costs, so gating the ratio would only gate the scheduler.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from conftest import save_artifact

from repro.api import ExperimentEngine, ExperimentSpec
from repro.experiments import runner
from repro.experiments.journal import RunJournal, replay_journal
from repro.experiments.tables import render_table

WORKLOADS = ("libquantum", "mcf", "lbm", "soplex")
MACHINE = "amd-phenom-ii"
GRID_CONFIGS = ("baseline", "hw", "swnt")

#: Hard ceiling on journal-write time as a fraction of journaled wall.
OVERHEAD_BUDGET = 0.05


def test_recovery_overhead(bench_scale, results_dir):
    specs = ExperimentSpec.grid(
        WORKLOADS, (MACHINE,), GRID_CONFIGS, scales=(bench_scale,)
    )
    runs_dir = tempfile.mkdtemp(prefix="repro-bench-runs-")
    try:
        runner.clear_memo()
        plain = ExperimentEngine(jobs=1)
        start = time.perf_counter()
        plain.run(specs)
        t_plain = time.perf_counter() - start

        runner.clear_memo()
        journal = RunJournal.create(run_id="bench-overhead", runs_dir=runs_dir)
        journaled = ExperimentEngine(jobs=1, journal=journal)
        start = time.perf_counter()
        journaled.run(specs)
        t_journaled = time.perf_counter() - start
        journal.finish(cells=len(specs))
        journal.close()

        replay = replay_journal(journal.path, "bench-overhead")
        assert len(replay.completed) == len(specs)
        assert replay.finished

        fraction = journal.write_seconds / max(t_journaled, 1e-9)
        assert fraction <= OVERHEAD_BUDGET, (
            f"journal writes took {fraction:.1%} of the journaled run "
            f"({journal.write_seconds:.3f}s of {t_journaled:.2f}s); "
            f"budget is {OVERHEAD_BUDGET:.0%}"
        )
    finally:
        shutil.rmtree(runs_dir, ignore_errors=True)
        runner.clear_memo()

    cells = len(specs)
    rows = [
        ("unjournaled (jobs=1)", f"{t_plain:.2f}", "-", "-"),
        (
            "journaled, fsync (jobs=1)",
            f"{t_journaled:.2f}",
            f"{journal.write_seconds:.3f}",
            f"{fraction:.2%}",
        ),
        ("A/B wall ratio (ungated)", f"{t_journaled / max(t_plain, 1e-9):.3f}x", "", ""),
        (f"gate: journal time <= {OVERHEAD_BUDGET:.0%}", "PASS", "", ""),
    ]
    text = render_table(
        ("regime", "wall (s)", "journal (s)", "journal/wall"),
        rows,
        title=(
            f"Recovery overhead — {cells}-cell cold grid "
            f"({journal.appended} records, scale {bench_scale:g}, "
            f"{os.cpu_count()} CPU)"
        ),
    )
    save_artifact(results_dir, "recovery_overhead.txt", text)
