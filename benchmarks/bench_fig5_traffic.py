"""Regenerates paper Fig. 5: off-chip traffic increase per policy."""

import pytest
from conftest import save_artifact

from repro.experiments.fig5_traffic import render_fig5, run_fig5, swnt_vs_hw_reduction


@pytest.mark.parametrize("machine", ["amd-phenom-ii", "intel-i7-2600k"])
def test_fig5_traffic(benchmark, bench_scale, results_dir, machine):
    rows = benchmark.pedantic(
        run_fig5, args=(machine,), kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, f"fig5_traffic_{machine}.txt", render_fig5(rows))

    reduction = swnt_vs_hw_reduction(machine, scale=bench_scale)
    benchmark.extra_info["swnt_vs_hw_traffic_reduction"] = round(reduction, 3)

    by_name = {r.benchmark: r for r in rows}
    # Shape: hardware prefetching moves the most data; the NT scheme is
    # strictly better than HW per benchmark and goes below baseline on
    # the streaming codes.
    avg_hw = sum(r.increases["hw"] for r in rows) / len(rows)
    avg_swnt = sum(r.increases["swnt"] for r in rows) / len(rows)
    assert avg_swnt < avg_hw
    assert by_name["cigar"].increases["hw"] > 0.3  # cigar's HW blow-up
    streaming_below = sum(
        by_name[n].increases["swnt"] < 0.0 for n in ("libquantum", "lbm", "leslie3d")
    )
    assert streaming_below >= 2
    # Paper: 44 % (AMD) / 64 % (Intel) less traffic than HW on average.
    assert reduction > 0.05
