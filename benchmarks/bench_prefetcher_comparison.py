"""Extension benchmark: hardware prefetcher designs head-to-head.

Not a paper artefact — compares the three hardware prefetcher models
(AMD-style RPT, Intel-style streamer+adjacent, GHB delta-correlation)
across the benchmark suite, the kind of design-space sweep the
simulator substrate makes cheap.
"""

from conftest import save_artifact

from repro.cachesim import CacheHierarchy
from repro.config import get_machine
from repro.experiments.runner import profile_for
from repro.experiments.tables import render_table
from repro.hwpref import GHBPrefetcher, amd_hw_prefetcher, intel_hw_prefetcher
from repro.workloads.spec2006 import ALL_SINGLE_CORE

MACHINE = "amd-phenom-ii"

PREFETCHERS = {
    "rpt": lambda: amd_hw_prefetcher(),
    "streamer": lambda: intel_hw_prefetcher(),
    "ghb": lambda: GHBPrefetcher(),
}


def _run_comparison(scale):
    machine = get_machine(MACHINE)
    rows = []
    for name in ALL_SINGLE_CORE:
        profile = profile_for(name, "ref", scale)
        base = CacheHierarchy(machine).run(
            profile.execution.trace,
            profile.execution.work_per_memop,
            profile.execution.mlp,
        )
        cells = [name]
        for label, factory in PREFETCHERS.items():
            h = CacheHierarchy(machine, prefetcher=factory())
            stats = h.run(
                profile.execution.trace,
                profile.execution.work_per_memop,
                profile.execution.mlp,
            )
            speedup = base.cycles / stats.cycles - 1.0
            traffic = stats.dram_bytes / max(1, base.dram_bytes) - 1.0
            cells.append(f"{speedup * 100:+.0f}%/{traffic * 100:+.0f}%t")
        rows.append(tuple(cells))
    return rows


def test_prefetcher_comparison(benchmark, bench_scale, results_dir):
    scale = min(bench_scale, 0.5)
    rows = benchmark.pedantic(_run_comparison, args=(scale,), rounds=1, iterations=1)
    text = render_table(
        ("benchmark", *PREFETCHERS.keys()),
        rows,
        title=f"Extension: hardware prefetcher comparison — {MACHINE} "
        "(speedup / traffic increase)",
    )
    save_artifact(results_dir, "prefetcher_comparison.txt", text)
    assert len(rows) == len(ALL_SINGLE_CORE)
