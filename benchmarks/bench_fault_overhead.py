"""Fault-tolerance overhead: disarmed instrumentation vs injected failures.

Measures engine wall-clock for one 12-cell slice of the evaluation grid
(4 workloads × 3 configs) under two regimes:

* **disarmed** — the fault-injection registry is empty, so every
  instrumented site costs one module-attribute truth test; this is the
  tax every production run pays for the fault-tolerance layer;
* **10 % injected** — a deterministic ~10 % of cells raise in the
  worker on every attempt; the engine runs best-effort, retries, bisects
  the poison groups, and reports the losses.

The point of the artefact is the ratio: the disarmed run should match
the pre-fault-tolerance engine (the layer is free when healthy), and the
injected run bounds what a poison cell costs in re-dispatches.
"""

from __future__ import annotations

import os
import time

from conftest import save_artifact

from repro import faults
from repro.api import ExperimentSpec
from repro.experiments import runner
from repro.api import ExperimentEngine
from repro.experiments.tables import render_table
from repro.retry import RetryPolicy

WORKLOADS = ("libquantum", "mcf", "lbm", "soplex")
MACHINE = "amd-phenom-ii"
GRID_CONFIGS = ("baseline", "hw", "swnt")
FAILURE_RATE = 0.10


def _timed_run(engine: ExperimentEngine, grid) -> float:
    start = time.perf_counter()
    engine.run(grid)
    return time.perf_counter() - start


def test_fault_overhead(bench_scale, results_dir):
    jobs = max(2, int(os.environ.get("REPRO_BENCH_JOBS", "2")))
    grid = ExperimentSpec.grid(
        WORKLOADS, (MACHINE,), GRID_CONFIGS, scales=(bench_scale,)
    )
    n_poison = max(1, round(FAILURE_RATE * len(grid)))
    poisoned = set(grid[:: max(1, len(grid) // n_poison)][:n_poison])
    policy = RetryPolicy(max_attempts=3, base_delay=0.0)

    faults.disarm()
    runner.clear_memo()
    clean = ExperimentEngine(jobs=jobs, retry=policy)
    t_clean = _timed_run(clean, grid)
    assert clean.stats.computed == len(grid)
    assert not clean.last_failures

    runner.clear_memo()
    faults.arm("worker.compute", "raise", match=lambda s: s in poisoned)
    try:
        injected = ExperimentEngine(jobs=jobs, strict=False, retry=policy)
        t_injected = _timed_run(injected, grid)
    finally:
        faults.disarm()
    assert set(injected.last_failures.specs()) == poisoned
    assert injected.stats.computed == len(grid) - len(poisoned)

    rows = [
        (
            "faults disarmed",
            f"{t_clean:.2f}",
            f"{t_clean / len(grid):.3f}",
            f"{clean.stats.computed} computed",
        ),
        (
            f"{n_poison}/{len(grid)} cells poisoned",
            f"{t_injected:.2f}",
            f"{t_injected / len(grid):.3f}",
            f"{injected.stats.computed} computed, "
            f"{injected.stats.failed} failed, "
            f"{injected.stats.retries} retries",
        ),
        (
            "overhead (injected/clean)",
            f"{t_injected / max(t_clean, 1e-9):.2f}x",
            "",
            "",
        ),
    ]
    text = render_table(
        ("regime", "wall (s)", "s/cell", "cells"),
        rows,
        title=(
            f"Fault-tolerance overhead — {len(grid)}-cell grid "
            f"({len(WORKLOADS)} workloads x {len(GRID_CONFIGS)} configs, "
            f"{MACHINE}, scale {bench_scale:g}, jobs={jobs}, "
            f"{FAILURE_RATE:.0%} injected failure rate)"
        ),
    )
    save_artifact(results_dir, "fault_overhead.txt", text)
