"""Regenerates paper Fig. 4: single-thread speedups on both machines."""

import pytest
from conftest import save_artifact

from repro.experiments.fig4_speedup import average_row, render_fig4, run_fig4


@pytest.mark.parametrize("machine", ["amd-phenom-ii", "intel-i7-2600k"])
def test_fig4_speedup(benchmark, bench_scale, results_dir, machine):
    rows = benchmark.pedantic(
        run_fig4, args=(machine,), kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, f"fig4_speedup_{machine}.txt", render_fig4(rows))

    avg = average_row(rows)
    for policy, value in avg.items():
        benchmark.extra_info[f"avg_{policy}"] = round(value, 4)

    by_name = {r.benchmark: r for r in rows}
    # Paper shape: big wins on streaming benchmarks, small on chasers.
    assert by_name["libquantum"].speedups["swnt"] > 0.25
    assert by_name["omnetpp"].speedups["swnt"] < 0.15
    assert by_name["xalan"].speedups["swnt"] < 0.10
    # cigar: AMD hardware prefetching slows it down; software helps.
    if machine == "amd-phenom-ii":
        assert by_name["cigar"].speedups["hw"] < 0.0
    assert by_name["cigar"].speedups["swnt"] > 0.0
    # stride-centric never beats the full method on average.
    assert avg["swnt"] >= avg["stride"] - 0.01
