"""Regenerates paper Fig. 6: average off-chip bandwidth per policy."""

import pytest
from conftest import save_artifact

from repro.config import get_machine
from repro.experiments.fig6_bandwidth import (
    render_fig6,
    run_fig6,
    swnt_vs_hw_bandwidth_reduction,
)


@pytest.mark.parametrize("machine", ["amd-phenom-ii", "intel-i7-2600k"])
def test_fig6_bandwidth(benchmark, bench_scale, results_dir, machine):
    rows = benchmark.pedantic(
        run_fig6, args=(machine,), kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    save_artifact(results_dir, f"fig6_bandwidth_{machine}.txt", render_fig6(rows))

    saving = swnt_vs_hw_bandwidth_reduction(rows)
    benchmark.extra_info["swnt_vs_hw_bw_reduction"] = round(saving, 3)

    peak = get_machine(machine).peak_bandwidth_gbs
    for r in rows:
        for config, bw in r.bandwidth.items():
            assert 0.0 <= bw <= peak * 1.05, (r.benchmark, config, bw)
    # Paper: the software scheme consumes 19 % (AMD) / 38 % (Intel) less
    # bandwidth than hardware prefetching on average.
    assert saving > 0.0
